// Sensor analytics: the paper's motivating analytical workload. Ingests a
// numeric, nested IoT dataset into a row layout (VB) and a columnar layout
// (AMAX), then compares storage size, bytes read, and query time for the
// sensors queries (§6.4.2).
//
//   ./examples/sensor_analytics [records]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/datagen/datagen.h"
#include "src/lsm/dataset.h"
#include "src/query/engine.h"

using namespace lsmcol;

namespace {

std::unique_ptr<Dataset> Ingest(LayoutKind layout, uint64_t records,
                                const std::string& dir, BufferCache* cache) {
  DatasetOptions options;
  options.layout = layout;
  options.dir = dir;
  options.name = std::string("sensors_") + LayoutKindName(layout);
  options.memtable_bytes = 8u << 20;
  auto dataset = Dataset::Create(options, cache);
  LSMCOL_CHECK(dataset.ok());
  Rng rng(42);
  for (uint64_t i = 0; i < records; ++i) {
    LSMCOL_CHECK_OK((*dataset)->Insert(
        MakeRecord(Workload::kSensors, static_cast<int64_t>(i), &rng)));
  }
  LSMCOL_CHECK_OK((*dataset)->Flush());
  return std::move(*dataset);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t records = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 3000;
  const std::string dir = "/tmp/lsmcol_sensor_analytics";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  BufferCache cache(512u << 20, kDefaultPageSize);

  auto vb = Ingest(LayoutKind::kVb, records, dir, &cache);
  auto amax = Ingest(LayoutKind::kAmax, records, dir, &cache);
  std::printf("storage:  VB %.2f MiB   AMAX %.2f MiB\n",
              vb->OnDiskBytes() / 1048576.0, amax->OnDiskBytes() / 1048576.0);

  // Q3 of the sensors suite: top-10 sensors by max temperature.
  QueryPlan plan;
  plan.unnests.push_back({Expr::Field({"readings"}), "r"});
  plan.group_keys.push_back(Expr::Field({"sensor_id"}));
  plan.aggregates.push_back(AggSpec::Max(Expr::VarPath("r", {"temp"})));
  plan.order_by = 1;
  plan.order_desc = true;
  plan.limit = 10;

  for (Dataset* dataset : {vb.get(), amax.get()}) {
    cache.Clear();
    cache.ResetStats();
    auto result = RunCompiled(dataset, plan);
    LSMCOL_CHECK(result.ok());
    std::printf("\n%s: read %.2f MiB for top-10 max temperatures:\n",
                LayoutKindName(dataset->layout()),
                cache.stats().bytes_read / 1048576.0);
    for (const auto& row : result->rows) {
      std::printf("  sensor %lld -> %.2f C\n",
                  static_cast<long long>(row[0].int_value()),
                  row[1].as_double());
    }
  }
  std::filesystem::remove_all(dir);
  return 0;
}
