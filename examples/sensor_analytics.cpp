// Sensor analytics: the paper's motivating analytical workload. Ingests a
// numeric, nested IoT dataset into a row layout (VB) and a columnar layout
// (AMAX), then compares storage size, bytes read, and query time for the
// sensors queries (§6.4.2).
//
//   ./examples/sensor_analytics [records]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/datagen/datagen.h"
#include "src/query/engine.h"
#include "src/store/store.h"

using namespace lsmcol;

namespace {

Dataset* Ingest(Store* store, LayoutKind layout, uint64_t records) {
  DatasetOptions options;
  options.layout = layout;
  options.memtable_bytes = 8u << 20;
  auto dataset = store->OpenDataset(
      std::string("sensors_") + LayoutKindName(layout), options);
  LSMCOL_CHECK(dataset.ok());
  Rng rng(42);
  for (uint64_t i = 0; i < records; ++i) {
    LSMCOL_CHECK_OK((*dataset)->Insert(
        MakeRecord(Workload::kSensors, static_cast<int64_t>(i), &rng)));
  }
  LSMCOL_CHECK_OK((*dataset)->Flush());
  return *dataset;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t records = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 3000;
  const std::string dir = "/tmp/lsmcol_sensor_analytics";
  std::filesystem::remove_all(dir);

  // One store, one shared cache, two named datasets — same documents in a
  // row layout (VB) and the columnar mega-leaf layout (AMAX).
  StoreOptions store_options;
  store_options.dir = dir;
  store_options.cache_bytes = 512u << 20;
  auto store_or = Store::Open(store_options);
  LSMCOL_CHECK(store_or.ok());
  Store* store = store_or->get();
  BufferCache& cache = *store->cache();

  Dataset* vb = Ingest(store, LayoutKind::kVb, records);
  Dataset* amax = Ingest(store, LayoutKind::kAmax, records);
  std::printf("storage:  VB %.2f MiB   AMAX %.2f MiB\n",
              vb->OnDiskBytes() / 1048576.0, amax->OnDiskBytes() / 1048576.0);

  // Q3 of the sensors suite: top-10 sensors by max temperature.
  QueryPlan plan;
  plan.unnests.push_back({Expr::Field({"readings"}), "r"});
  plan.group_keys.push_back(Expr::Field({"sensor_id"}));
  plan.aggregates.push_back(AggSpec::Max(Expr::VarPath("r", {"temp"})));
  plan.order_by = 1;
  plan.order_desc = true;
  plan.limit = 10;

  for (Dataset* dataset : {vb, amax}) {
    cache.Clear();
    cache.ResetStats();
    auto result = RunCompiled(dataset, plan);
    LSMCOL_CHECK(result.ok());
    std::printf("\n%s: read %.2f MiB for top-10 max temperatures:\n",
                LayoutKindName(dataset->layout()),
                cache.stats().bytes_read / 1048576.0);
    for (const auto& row : result->rows) {
      std::printf("  sensor %lld -> %.2f C\n",
                  static_cast<long long>(row[0].int_value()),
                  row[1].as_double());
    }
  }
  std::filesystem::remove_all(dir);
  return 0;
}
