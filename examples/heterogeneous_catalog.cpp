// Heterogeneous values: a product catalog whose fields change type across
// documents — strings become objects, scalars become arrays (§3.2.2's
// union types). Shows the inferred union schema and queries that span the
// alternatives.
//
//   ./examples/heterogeneous_catalog

#include <cstdio>
#include <filesystem>

#include "src/json/parser.h"
#include "src/query/engine.h"
#include "src/store/store.h"

using namespace lsmcol;

int main() {
  const std::string dir = "/tmp/lsmcol_hetero";
  std::filesystem::remove_all(dir);

  StoreOptions store_options;
  store_options.dir = dir;
  store_options.cache_bytes = 128u << 20;
  auto store = Store::Open(store_options);
  LSMCOL_CHECK(store.ok());

  DatasetOptions options;
  options.layout = LayoutKind::kApax;
  auto dataset = (*store)->OpenDataset("catalog", options);
  LSMCOL_CHECK(dataset.ok());

  // Ingested from "a web API we don't control": the brand is sometimes a
  // string, sometimes an object; tags are strings or nested arrays; price
  // is an int or a double.
  const char* documents[] = {
      R"({"id": 1, "brand": "acme", "price": 10, "tags": ["tools"]})",
      R"({"id": 2, "brand": {"name": "Globex", "country": "DE"},
          "price": 19.5, "tags": [["home", "garden"], "sale"]})",
      R"({"id": 3, "brand": "initech", "price": 7})",
      R"({"id": 4, "brand": {"name": "Umbrella"}, "price": 12.25,
          "tags": ["lab", ["safety"]]})",
      R"({"id": 5, "price": "call us"})",
  };
  for (const char* doc : documents) {
    LSMCOL_CHECK_OK((*dataset)->InsertJson(doc));
  }
  LSMCOL_CHECK_OK((*dataset)->Flush());

  std::printf("inferred schema (note the union nodes):\n%s\n",
              (*dataset)->schema()->ToString().c_str());

  // Records assemble back with their original shapes.
  auto cursor = (*dataset)->Scan(Projection::All());
  LSMCOL_CHECK(cursor.ok());
  std::printf("assembled records:\n");
  while (true) {
    auto ok = (*cursor)->Next();
    LSMCOL_CHECK(ok.ok());
    if (!*ok) break;
    Value record;
    LSMCOL_CHECK_OK((*cursor)->Record(&record));
    std::printf("  %s\n", ToJson(record).c_str());
  }

  // Accessing brand.name only needs the object alternative's column
  // (§3.2.2: "processing column 3 is sufficient").
  QueryPlan names;
  names.pre_filter = Expr::Not(
      Expr::IsMissing(Expr::Field({"brand", "name"})));
  names.projections.push_back(Expr::Field({"id"}));
  names.projections.push_back(Expr::Field({"brand", "name"}));
  names.order_by = 0;
  names.order_desc = false;
  auto result = RunCompiled(*dataset, names);
  LSMCOL_CHECK(result.ok());
  std::printf("object-branded products:\n");
  for (const auto& row : result->rows) {
    std::printf("  id %lld: %s\n",
                static_cast<long long>(row[0].int_value()),
                row[1].string_value().c_str());
  }

  // SUM spans the int and double alternatives; the string price
  // ("call us") does not participate in the numeric aggregate. (MIN/MAX
  // use the total type order, so a string would win MAX — SQL++
  // semantics.)
  QueryPlan stats;
  stats.aggregates.push_back(AggSpec::Sum(Expr::Field({"price"})));
  stats.aggregates.push_back(AggSpec::Count(Expr::Field({"price"})));
  auto price = RunCompiled(*dataset, stats);
  LSMCOL_CHECK(price.ok());
  std::printf("price sum=%s (4 numeric) count=%s (all present)\n",
              ToJson(price->rows[0][0]).c_str(),
              ToJson(price->rows[0][1]).c_str());

  std::filesystem::remove_all(dir);
  return 0;
}
