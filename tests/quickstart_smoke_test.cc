// End-to-end smoke test mirroring examples/quickstart.cpp: ingest the
// paper's Figure 4 documents, flush, scan, run the Figure 11 query with
// both engines, and exercise lookup/upsert/delete — across all four
// layouts, so the public API path is covered for each LayoutKind.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "src/json/parser.h"
#include "src/lsm/dataset.h"
#include "src/query/engine.h"

namespace lsmcol {
namespace {

class QuickstartSmokeTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    // Unique per test run (TempDir + pid) so concurrent ctest invocations
    // from different build trees cannot clobber each other's files.
    dir_ = ::testing::TempDir() + "lsmcol_quickstart_smoke_" +
           std::to_string(::getpid()) + "_" + LayoutKindName(GetParam());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_P(QuickstartSmokeTest, IngestFlushQueryBothEngines) {
  BufferCache cache(/*capacity_bytes=*/64u << 20,
                    /*page_size=*/kDefaultPageSize);

  DatasetOptions options;
  options.layout = GetParam();
  options.dir = dir_;
  options.name = "gamers";
  options.pk_field = "id";
  auto dataset = Dataset::Create(options, &cache);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  const char* documents[] = {
      R"({"id": 0, "games": [{"title": "NFL"}]})",
      R"({"id": 1, "name": {"last": "Brown"},
          "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]})",
      R"({"id": 2, "name": {"first": "John", "last": "Smith"},
          "games": [{"title": "NBA", "consoles": ["PS4", "PC"]},
                    {"title": "NFL", "consoles": ["XBOX"]}]})",
      R"({"id": 3})",
  };
  for (const char* doc : documents) {
    ASSERT_TRUE((*dataset)->InsertJson(doc).ok()) << doc;
  }
  ASSERT_TRUE((*dataset)->Flush().ok());

  // Full reconciled scan returns every record.
  auto cursor = (*dataset)->Scan(Projection::All());
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  int scanned = 0;
  while (true) {
    auto more = (*cursor)->Next();
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    Value record;
    ASSERT_TRUE((*cursor)->Record(&record).ok());
    ++scanned;
  }
  EXPECT_EQ(scanned, 4);

  // Figure 11 query: unnest games, count per title — both engines must
  // agree: NFL appears twice, FIFA and NBA once each.
  QueryPlan plan;
  plan.unnests.push_back({Expr::Field({"games"}), "g"});
  plan.group_keys.push_back(Expr::VarPath("g", {"title"}));
  plan.aggregates.push_back(AggSpec::CountStar());
  plan.order_by = 1;
  plan.order_desc = true;
  for (bool compiled : {false, true}) {
    auto result = RunQuery(dataset->get(), plan, compiled);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->rows.size(), 3u)
        << (compiled ? "compiled" : "interpreted");
    EXPECT_EQ(result->rows[0][0].string_value(), "NFL");
    EXPECT_EQ(result->rows[0][1].int_value(), 2);
    EXPECT_EQ(result->rows[1][1].int_value(), 1);
    EXPECT_EQ(result->rows[2][1].int_value(), 1);
  }

  // Point lookup, upsert, delete survive a second flush.
  Value record;
  ASSERT_TRUE((*dataset)->Lookup(2, &record).ok());
  ASSERT_TRUE(
      (*dataset)->InsertJson(R"({"id": 2, "name": "replaced"})").ok());
  ASSERT_TRUE((*dataset)->Delete(0).ok());
  ASSERT_TRUE((*dataset)->Flush().ok());
  EXPECT_TRUE((*dataset)->Lookup(0, &record).IsNotFound());
  ASSERT_TRUE((*dataset)->Lookup(2, &record).ok());
  EXPECT_EQ(record.Get("name").string_value(), "replaced");

  EXPECT_GT((*dataset)->OnDiskBytes(), 0u);
  EXPECT_GE((*dataset)->component_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, QuickstartSmokeTest,
    ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb, LayoutKind::kApax,
                      LayoutKind::kAmax),
    [](const ::testing::TestParamInfo<LayoutKind>& info) {
      return LayoutKindName(info.param);
    });

}  // namespace
}  // namespace lsmcol
