// Unit tests for the Value document model and the JSON parser/printer.

#include <gtest/gtest.h>

#include "src/json/parser.h"
#include "src/json/value.h"

namespace lsmcol {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Missing().is_missing());
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_TRUE(Value::Int(1).is_int());
  EXPECT_TRUE(Value::Double(1.5).is_double());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_TRUE(Value::MakeArray().is_array());
  EXPECT_TRUE(Value::MakeObject().is_object());
  EXPECT_TRUE(Value::Int(1).is_number());
  EXPECT_TRUE(Value::Double(1.0).is_number());
  EXPECT_FALSE(Value::String("1").is_number());
}

TEST(ValueTest, ObjectPreservesInsertionOrder) {
  Value obj = Value::MakeObject();
  obj.Set("zebra", Value::Int(1));
  obj.Set("apple", Value::Int(2));
  obj.Set("mango", Value::Int(3));
  ASSERT_EQ(obj.object().size(), 3u);
  EXPECT_EQ(obj.object()[0].first, "zebra");
  EXPECT_EQ(obj.object()[1].first, "apple");
  EXPECT_EQ(obj.object()[2].first, "mango");
}

TEST(ValueTest, SetOverwritesExistingKeyInPlace) {
  Value obj = Value::MakeObject();
  obj.Set("a", Value::Int(1));
  obj.Set("b", Value::Int(2));
  obj.Set("a", Value::String("new"));
  ASSERT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.object()[0].first, "a");
  EXPECT_TRUE(obj.Get("a").is_string());
}

TEST(ValueTest, GetMissingField) {
  Value obj = Value::MakeObject();
  obj.Set("a", Value::Int(1));
  EXPECT_TRUE(obj.Get("nope").is_missing());
  EXPECT_TRUE(Value::Int(5).Get("a").is_missing());  // non-object
}

TEST(ValueTest, EqualsIsStructural) {
  auto mk = [] {
    Value v = Value::MakeObject();
    v.Set("a", Value::Int(1));
    Value arr = Value::MakeArray();
    arr.Push(Value::String("x"));
    arr.Push(Value::Null());
    v.Set("b", std::move(arr));
    return v;
  };
  EXPECT_TRUE(mk().Equals(mk()));
  Value other = mk();
  other.Set("a", Value::Int(2));
  EXPECT_FALSE(mk().Equals(other));
}

TEST(ValueTest, IntAndDoubleAreDistinct) {
  EXPECT_FALSE(Value::Int(1).Equals(Value::Double(1.0)));
  EXPECT_EQ(Value::Int(3).as_double(), 3.0);
  EXPECT_EQ(Value::Double(3.5).as_double(), 3.5);
}

TEST(ParserTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->bool_value(), true);
  EXPECT_EQ(ParseJson("false")->bool_value(), false);
  EXPECT_EQ(ParseJson("42")->int_value(), 42);
  EXPECT_EQ(ParseJson("-17")->int_value(), -17);
  EXPECT_EQ(ParseJson("2.5")->double_value(), 2.5);
  EXPECT_EQ(ParseJson("1e3")->double_value(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(ParserTest, IntegerOverflowFallsBackToDouble) {
  auto r = ParseJson("99999999999999999999999");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_double());
}

TEST(ParserTest, ParsesNestedDocument) {
  auto r = ParseJson(R"({"id": 2, "name": {"first": "John"},
                         "games": [{"title": "NBA", "consoles": ["PS4","PC"]}]})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Value& v = *r;
  EXPECT_EQ(v.Get("id").int_value(), 2);
  EXPECT_EQ(v.Get("name").Get("first").string_value(), "John");
  const Value& games = v.Get("games");
  ASSERT_TRUE(games.is_array());
  ASSERT_EQ(games.array().size(), 1u);
  EXPECT_EQ(games.array()[0].Get("consoles").array()[1].string_value(), "PC");
}

TEST(ParserTest, StringEscapes) {
  auto r = ParseJson(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string_value(), "a\"b\\c\nd\teA");
}

TEST(ParserTest, UnicodeEscapeMultibyte) {
  auto r = ParseJson(R"("é中")");  // é, 中
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string_value(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(ParserTest, EmptyContainers) {
  EXPECT_EQ(ParseJson("[]")->size(), 0u);
  EXPECT_EQ(ParseJson("{}")->size(), 0u);
  EXPECT_EQ(ParseJson("[[],{}]")->size(), 2u);
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("{a: 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("-").ok());
}

TEST(ParserTest, RejectsTooDeepNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(ParserTest, DuplicateKeysKeepLast) {
  auto r = ParseJson(R"({"a": 1, "a": 2})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get("a").int_value(), 2);
  EXPECT_EQ(r->size(), 1u);
}

TEST(PrinterTest, CompactOutput) {
  auto v = ParseJson(R"({"a":[1,2.5,"x"],"b":{"c":null},"d":true})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ToJson(*v), R"({"a":[1,2.5,"x"],"b":{"c":null},"d":true})");
}

TEST(PrinterTest, EscapesControlCharacters) {
  Value v = Value::String(std::string("a\x01") + "b\n");
  EXPECT_EQ(ToJson(v), "\"a\\u0001b\\n\"");
}

TEST(PrinterTest, DoubleAlwaysPrintsAsDouble) {
  EXPECT_EQ(ToJson(Value::Double(2.0)), "2.0");
  EXPECT_EQ(ToJson(Value::Int(2)), "2");
}

// Property: parse(print(v)) == v for parsed documents.
class JsonRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTripTest, RoundTrips) {
  auto v1 = ParseJson(GetParam());
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto v2 = ParseJson(ToJson(*v1));
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_TRUE(v1->Equals(*v2)) << ToJson(*v1) << " vs " << ToJson(*v2);
  EXPECT_EQ(ToJson(*v1), ToJson(*v2));
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTripTest,
    ::testing::Values(
        "null", "true", "0", "-9223372036854775808", "9223372036854775807",
        "0.001", "1e300", "\"\"", "\"\\u0041snowman\"", "[]", "{}",
        R"([1,[2,[3,[4]]]])", R"({"a":{"b":{"c":{"d":1}}}})",
        R"({"id":2,"name":{"first":"John","last":"Smith"},
            "games":[{"title":"NBA","consoles":["PS4","PC"]},
                     {"title":"NFL","consoles":["XBOX"]}]})",
        R"([{"mixed":[0,"1",{"seq":2}]}])",
        R"({"hetero":[["FIFA","PES"],"NBA"]})"));

TEST(PrinterTest, PrettyPrintIsReparseable) {
  auto v = ParseJson(R"({"a":[1,2],"b":{"c":"d"}})");
  ASSERT_TRUE(v.ok());
  std::string pretty = ToPrettyJson(*v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto v2 = ParseJson(pretty);
  ASSERT_TRUE(v2.ok()) << pretty;
  EXPECT_TRUE(v->Equals(*v2));
}

}  // namespace
}  // namespace lsmcol
