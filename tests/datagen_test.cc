// Tests that the synthetic workloads reproduce Table 1's structural
// profiles: column counts, dominant types, nesting, record sizes,
// heterogeneity (wos), monotone timestamps (tweet_2).

#include <gtest/gtest.h>

#include "src/datagen/datagen.h"
#include "src/json/parser.h"
#include "src/schema/schema.h"

namespace lsmcol {
namespace {

class DatagenTest : public ::testing::TestWithParam<Workload> {};

TEST_P(DatagenTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int64_t i = 0; i < 20; ++i) {
    Value va = MakeRecord(GetParam(), i, &a);
    Value vb = MakeRecord(GetParam(), i, &b);
    EXPECT_TRUE(va.Equals(vb)) << i;
  }
}

TEST_P(DatagenTest, RecordsCarryIntPkAndInferCleanly) {
  Rng rng(7);
  Schema schema("id");
  for (int64_t i = 0; i < 200; ++i) {
    Value v = MakeRecord(GetParam(), i, &rng);
    ASSERT_EQ(v.Get("id").int_value(), i);
    ASSERT_TRUE(schema.MergeRecord(v).ok());
  }
  EXPECT_GT(schema.column_count(), 3);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DatagenTest,
                         ::testing::Values(Workload::kCell, Workload::kSensors,
                                           Workload::kTweet1, Workload::kWos,
                                           Workload::kTweet2),
                         [](const auto& info) {
                           std::string n = WorkloadName(info.param);
                           for (char& c : n) {
                             if (c == '_') c = ' ';
                           }
                           n.erase(std::remove(n.begin(), n.end(), ' '),
                                   n.end());
                           return n;
                         });

int InferredColumns(Workload w, int records) {
  Rng rng(1);
  Schema schema("id");
  for (int64_t i = 0; i < records; ++i) {
    EXPECT_TRUE(schema.MergeRecord(MakeRecord(w, i, &rng)).ok());
  }
  return schema.column_count();
}

double AvgJsonSize(Workload w, int records) {
  Rng rng(1);
  size_t total = 0;
  for (int64_t i = 0; i < records; ++i) {
    total += ToJson(MakeRecord(w, i, &rng)).size();
  }
  return static_cast<double>(total) / records;
}

TEST(DatagenProfileTest, CellIsFlatWithSevenColumns) {
  EXPECT_EQ(InferredColumns(Workload::kCell, 500), 7);
  double avg = AvgJsonSize(Workload::kCell, 500);
  EXPECT_GT(avg, 80);
  EXPECT_LT(avg, 260);  // "~141 B" scale
}

TEST(DatagenProfileTest, SensorsIsNumericWithModestColumns) {
  int cols = InferredColumns(Workload::kSensors, 300);
  EXPECT_GE(cols, 12);
  EXPECT_LE(cols, 20);  // Table 1: 16
  double avg = AvgJsonSize(Workload::kSensors, 100);
  EXPECT_GT(avg, 2500);  // "3.8 KB" scale
  EXPECT_LT(avg, 8000);
}

TEST(DatagenProfileTest, Tweet1AccumulatesHundredsOfSparseColumns) {
  int cols = InferredColumns(Workload::kTweet1, 2000);
  EXPECT_GT(cols, 500);   // Table 1: 933
  EXPECT_LT(cols, 1100);
  double avg = AvgJsonSize(Workload::kTweet1, 300);
  EXPECT_GT(avg, 600);
}

TEST(DatagenProfileTest, WosHasUnionTypedAddresses) {
  Rng rng(1);
  Schema schema("id");
  bool saw_object = false, saw_array = false;
  for (int64_t i = 0; i < 500; ++i) {
    Value v = MakeRecord(Workload::kWos, i, &rng);
    const Value& addr = v.Get("static_data")
                            .Get("fullrecord_metadata")
                            .Get("addresses")
                            .Get("address_name");
    saw_object |= addr.is_object();
    saw_array |= addr.is_array();
    ASSERT_TRUE(schema.MergeRecord(v).ok());
  }
  EXPECT_TRUE(saw_object);
  EXPECT_TRUE(saw_array);
  const SchemaNode* node = schema.ResolvePath(
      {"static_data", "fullrecord_metadata", "addresses", "address_name"});
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->is_union());
  // Abstracts are long.
  double avg = AvgJsonSize(Workload::kWos, 100);
  EXPECT_GT(avg, 1500);
}

TEST(DatagenProfileTest, Tweet2HasMonotoneTimestamps) {
  Rng rng(1);
  int64_t prev = INT64_MIN;
  for (int64_t i = 0; i < 100; ++i) {
    Value v = MakeRecord(Workload::kTweet2, i, &rng);
    int64_t ts = v.Get("timestamp").int_value();
    EXPECT_GT(ts, prev);
    prev = ts;
  }
  int cols = InferredColumns(Workload::kTweet2, 2000);
  EXPECT_GT(cols, 120);  // Table 1: 275 (moderate)
  EXPECT_LT(cols, 500);
}

TEST(DatagenProfileTest, SyntheticTextIsCompressibleVocabulary) {
  Rng rng(1);
  std::string text = SyntheticText(&rng, 100, 100);
  // Vocabulary words separated by spaces.
  EXPECT_NE(text.find(' '), std::string::npos);
  EXPECT_GT(text.size(), 300u);
}

}  // namespace
}  // namespace lsmcol
