// Integration tests for the online integrity scrubber: read-side bit-flip
// injection, the scheduler's low-priority lane, synchronous and background
// scrub passes (detection + quarantine across all four layouts), damage
// persistence across restart, and the WAL/background-error fields of
// Store::Health().

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/lsm/scheduler.h"
#include "src/lsm/scrubber.h"
#include "src/storage/fault_injection_fs.h"
#include "src/storage/file.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

Value MakeRecord(int64_t id) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("name", Value::String("user_" + std::to_string(id)));
  v.Set("score", Value::Double(static_cast<double>(id) * 0.5));
  return v;
}

// ----------------------------------------------------------- fault fs

// Satellite: a kRead flip rule corrupts what the reader sees while the
// bytes at rest stay clean — latent media decay, discovered on re-read.
TEST(ReadFlipTest, CorruptsReturnedBytesNotTheFile) {
  const std::string dir = testing::TempDir() + "/read_flip";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(CreateDirDurable(dir).ok());
  const std::string path = dir + "/victim.dat";

  FaultInjectionFs fault_fs;
  {
    auto file = fault_fs.Create(path);
    ASSERT_TRUE(file.ok());
    std::string payload(4096, 'x');
    ASSERT_TRUE((*file)->WriteAt(0, Slice(payload)).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  FaultRule rule;
  rule.path_substring = "victim";
  rule.op = FaultOp::kRead;
  rule.flip_bit = true;
  fault_fs.AddRule(rule);

  Buffer seen;
  {
    auto file = fault_fs.Open(path, /*writable=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->ReadAt(0, 4096, &seen).ok());
  }
  ASSERT_EQ(seen.size(), 4096u);
  EXPECT_NE(std::string(seen.data(), seen.size()), std::string(4096, 'x'));
  EXPECT_GE(fault_fs.flipped_bits(), 1u);

  // The stored bytes never changed: a clean read (no rules) sees them.
  fault_fs.ClearRules();
  Buffer clean;
  {
    auto file = fault_fs.Open(path, /*writable=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->ReadAt(0, 4096, &clean).ok());
  }
  EXPECT_EQ(std::string(clean.data(), clean.size()), std::string(4096, 'x'));
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- scheduler

TEST(SchedulerLowLaneTest, LowTasksRunWhenIdleAndAfterNotBefore) {
  FlushMergeScheduler scheduler(1);
  std::atomic<int> ran{0};
  ASSERT_TRUE(scheduler.ScheduleLow([&] { ++ran; }));
  for (int i = 0; i < 500 && ran.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(scheduler.low_tasks_run(), 1u);

  // A delayed low task does not run before its not_before time.
  const auto not_before =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(80);
  ASSERT_TRUE(scheduler.ScheduleLow([&] { ++ran; }, not_before));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(), 1);
  for (int i = 0; i < 500 && ran.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(ran.load(), 2);
  scheduler.Stop();
}

TEST(SchedulerLowLaneTest, HighLanePreemptsAndStopDiscardsLow) {
  FlushMergeScheduler scheduler(1);
  // Stall the only worker so both lanes queue up behind it.
  std::atomic<bool> release{false};
  std::atomic<int> order_probe{0};
  ASSERT_TRUE(scheduler.Schedule([&] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  }));
  std::atomic<int> low_ran{0};
  std::atomic<int> high_ran{0};
  ASSERT_TRUE(scheduler.ScheduleLow(
      [&] { low_ran = ++order_probe; }));  // due immediately
  ASSERT_TRUE(scheduler.Schedule([&] { high_ran = ++order_probe; }));
  release = true;
  for (int i = 0; i < 500 && (low_ran.load() == 0 || high_ran.load() == 0);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // The high task ran first even though the low task was enqueued first.
  ASSERT_GT(low_ran.load(), 0);
  ASSERT_GT(high_ran.load(), 0);
  EXPECT_LT(high_ran.load(), low_ran.load());

  // Stop() discards a still-pending (far-future) low task.
  std::atomic<int> never{0};
  ASSERT_TRUE(scheduler.ScheduleLow(
      [&] { ++never; },
      std::chrono::steady_clock::now() + std::chrono::hours(1)));
  scheduler.Stop();
  EXPECT_EQ(never.load(), 0);
}

// ----------------------------------------------------------- scrubbing

class ScrubTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/scrub_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoreOptions Options(FileSystem* fs = nullptr) {
    StoreOptions options;
    options.dir = dir_;
    options.page_size = kPage;
    options.cache_bytes = 512 * kPage;
    options.fs = fs;
    return options;
  }

  DatasetOptions DocOptions() {
    DatasetOptions options;
    options.layout = GetParam();
    options.auto_merge = false;
    return options;
  }

  std::vector<std::string> ComponentFiles() const {
    std::vector<std::string> out;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_ + "/docs")) {
      if (entry.path().extension() == ".cmp") {
        out.push_back(entry.path().string());
      }
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.size() != b.size() ? a.size() < b.size() : a < b;
    });
    return out;
  }

  static void FlipByteOnDisk(const std::string& path, std::streamoff off) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekg(off);
    char c = 0;
    f.get(c);
    f.seekp(off);
    f.put(static_cast<char>(c ^ 0x10));
  }

  std::string dir_;
};

// Tentpole: a synchronous scrub pass re-reads every leaf physically — a
// warm buffer cache must not mask on-disk decay — detects the damage,
// quarantines exactly the damaged component, and Health() names it.
TEST_P(ScrubTest, ScrubNowDetectsDecayUnderWarmCache) {
  auto store = Store::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  for (int64_t i = 1000; i < 1200; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  ASSERT_EQ(ds->component_count(), 2u);

  // Warm the cache over everything, then a clean scrub pass.
  {
    auto cursor = ds->Scan(Projection::All());
    ASSERT_TRUE(cursor.ok());
    while (true) {
      auto ok = (*cursor)->Next();
      ASSERT_TRUE(ok.ok());
      if (!*ok) break;
    }
  }
  {
    auto pass = (*store)->ScrubNow();
    ASSERT_TRUE(pass.ok()) << pass.status().ToString();
    EXPECT_EQ(pass->components, 2u);
    EXPECT_EQ(pass->damaged, 0u);
    EXPECT_GT(pass->bytes, 0u);
  }

  // Decay a leaf byte on disk, under the live (cached) engine.
  const auto components = ComponentFiles();
  ASSERT_EQ(components.size(), 2u);
  FlipByteOnDisk(components.front(), 16);

  auto pass = (*store)->ScrubNow();
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_EQ(pass->damaged, 1u);
  EXPECT_EQ(pass->components, 1u);

  DatasetStats stats = ds->stats();
  EXPECT_EQ(stats.quarantined_components, 1u);
  EXPECT_GE(stats.scrub_passes, 2u);
  EXPECT_GE(stats.scrub_damage_found, 1u);
  EXPECT_GT(stats.scrub_bytes, 0u);

  const auto health = (*store)->Health();
  ASSERT_EQ(health.size(), 1u);
  ASSERT_EQ(health[0].quarantined.size(), 1u);
  EXPECT_GE(health[0].scrub_passes, 2u);
  EXPECT_GE(health[0].scrub_damage_found, 1u);
  // A second pass skips the quarantined component instead of re-probing.
  auto again = (*store)->ScrubNow();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->skipped_quarantined, 1u);
  EXPECT_EQ(again->damaged, 0u);
}

// Satellite: scrub-found damage is persisted in the manifest — a restart
// must not silently "heal" a known-bad component.
TEST_P(ScrubTest, QuarantineSurvivesReopen) {
  {
    auto store = Store::Open(Options());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto ds = (*store)->OpenDataset("docs", DocOptions());
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    for (int64_t i = 0; i < 150; ++i) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(i)).ok());
    }
    ASSERT_TRUE((*ds)->Flush().ok());
    const auto components = ComponentFiles();
    ASSERT_EQ(components.size(), 1u);
    FlipByteOnDisk(components.front(), 16);
    auto pass = (*store)->ScrubNow();
    ASSERT_TRUE(pass.ok());
    ASSERT_EQ(pass->damaged, 1u);
  }
  // Reopen: the component must come back quarantined without any read
  // having to stumble over the damage again.
  auto store = Store::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  EXPECT_EQ(ds->stats().quarantined_components, 1u);
  const auto quarantined = ds->QuarantineList();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_TRUE(quarantined[0].second.IsDataDamage())
      << quarantined[0].second.ToString();
  Value record;
  EXPECT_TRUE(ds->Lookup(10, &record).IsDataDamage());
}

// Tentpole: the background scrubber finds decay on its own — no query,
// no explicit ScrubNow — within its interval/rate budget.
TEST_P(ScrubTest, BackgroundScrubberQuarantinesDecayedComponent) {
  StoreOptions options = Options();
  options.background_threads = 1;
  options.scrub.enabled = true;
  options.scrub.interval_ms = 5;
  options.scrub.bytes_per_sec = 0;  // unthrottled: test speed
  auto store = Store::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());

  // A clean pass completes in the background.
  bool saw_pass = false;
  for (int i = 0; i < 2500 && !saw_pass; ++i) {
    saw_pass = ds->stats().scrub_passes >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(saw_pass) << "background scrubber never completed a pass";
  ASSERT_NE((*store)->scrubber(), nullptr);
  EXPECT_GE((*store)->scrubber()->slices_run(), 1u);

  // Decay the component; the scrubber must quarantine it unprompted.
  const auto components = ComponentFiles();
  ASSERT_EQ(components.size(), 1u);
  FlipByteOnDisk(components.front(), 16);
  bool quarantined = false;
  for (int i = 0; i < 2500 && !quarantined; ++i) {
    quarantined = ds->stats().quarantined_components == 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(quarantined) << "background scrubber never found the decay";
  ASSERT_TRUE((*store)->Close().ok());
}

// Tentpole: the rate budget holds — an unthrottled pass and a throttled
// background scrubber verify the same bytes, but the throttled one
// spreads them over wall-clock time instead of one burst.
TEST_P(ScrubTest, RateBudgetSpreadsSlices) {
  StoreOptions options = Options();
  options.background_threads = 1;
  options.scrub.enabled = true;
  options.scrub.interval_ms = 100;  // idle briefly between rotations
  options.scrub.bytes_per_sec = 256 * 1024;  // slow enough to observe
  options.scrub.max_slice_bytes = 16 * 1024;
  auto store = Store::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  const uint64_t on_disk = ds->OnDiskBytes();
  ASSERT_GT(on_disk, 32u * 1024);  // several slices worth

  // Wait until one full pass worth of bytes has been verified (the
  // scrubber may have completed an empty pass before the flush landed,
  // so pass counts alone prove nothing about the data).
  const auto start = std::chrono::steady_clock::now();
  bool done = false;
  while (!done &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(30)) {
    done = ds->stats().scrub_bytes >= on_disk;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(done) << "throttled pass did not finish in time";
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const DatasetStats stats = ds->stats();
  // At 256 KiB/s verifying `scrub_bytes` takes at least bytes/rate
  // seconds; allow generous slack below the theoretical floor to stay
  // robust on loaded CI machines, but reject an instantaneous burst.
  const auto floor_ms = std::chrono::milliseconds(
      stats.scrub_bytes * 1000 / (256 * 1024) / 2);
  EXPECT_GE(elapsed, floor_ms)
      << "scrub finished faster than the rate budget allows";
  ASSERT_TRUE((*store)->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, ScrubTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// ----------------------------------------------------------- health

class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/scrub_health_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

// Satellite: a WAL that failed closed shows up in Health() as wedged.
TEST_F(HealthTest, WalWedgeSurfacesInHealth) {
  FaultInjectionFs fault_fs;
  StoreOptions options;
  options.dir = dir_;
  options.page_size = kPage;
  options.cache_bytes = 64 * kPage;
  options.wal.enabled = true;
  options.fs = &fault_fs;
  auto store = Store::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs");
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  ASSERT_TRUE(ds->Insert(MakeRecord(1)).ok());
  {
    const auto health = (*store)->Health();
    ASSERT_EQ(health.size(), 1u);
    EXPECT_FALSE(health[0].wal_wedged);
  }
  FaultRule rule;
  rule.path_substring = ".wal";
  rule.op = FaultOp::kSync;
  rule.max_failures = -1;
  fault_fs.AddRule(rule);
  EXPECT_FALSE(ds->Insert(MakeRecord(2)).ok());
  const auto health = (*store)->Health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_TRUE(health[0].wal_wedged);
  EXPECT_FALSE(health[0].wal_status.ok());
  fault_fs.ClearRules();
}

// Satellite: last_background_error is sticky — it keeps reporting the
// first failure even after a retry cleared the pending error.
TEST_F(HealthTest, LastBackgroundErrorIsSticky) {
  FaultInjectionFs fault_fs;
  StoreOptions options;
  options.dir = dir_;
  options.page_size = kPage;
  options.cache_bytes = 64 * kPage;
  options.background_threads = 1;
  options.fs = &fault_fs;
  auto store = Store::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  DatasetOptions doc;
  doc.auto_merge = false;
  auto ds_or = (*store)->OpenDataset("docs", doc);
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  // Fail the flush outright: ENOSPC is IOError-class, so the writer
  // retries it internally (IoRetryOptions::max_retries = 4) — keep the
  // device "full" past the whole retry budget so the failure surfaces.
  FaultRule rule;
  rule.path_substring = ".cmp.tmp";
  rule.op = FaultOp::kWrite;
  rule.error_code = ENOSPC;
  rule.max_failures = 8;
  fault_fs.AddRule(rule);
  EXPECT_FALSE(ds->Flush().ok());
  // Space freed; the retry drains the sealed memtable and clears the
  // pending error...
  fault_fs.ClearRules();
  Status flushed = ds->Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_TRUE(ds->background_error().ok());

  const auto health = (*store)->Health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_FALSE(health[0].has_background_error);
  // ...but the sticky first-failure record survives the recovery.
  EXPECT_FALSE(health[0].last_background_error.ok());
  ASSERT_TRUE((*store)->Close().ok());
}

}  // namespace
}  // namespace lsmcol
