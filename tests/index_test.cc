// Tests for the secondary index, primary-key index, and the §4.6
// maintenance/read protocols of IndexedDataset.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "src/common/rng.h"
#include "src/index/indexed_dataset.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

class SecondaryIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/sidx_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    cache_ = std::make_unique<BufferCache>(256 * kPage, kPage);
    SecondaryIndexOptions options;
    options.dir = dir_;
    options.page_size = kPage;
    options.memtable_entries = 100;
    auto index = SecondaryIndex::Create(options, cache_.get());
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);
  }
  void TearDown() override {
    index_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::set<std::pair<int64_t, int64_t>> Range(int64_t lo, int64_t hi) {
    std::vector<IndexEntry> entries;
    Status st = index_->ScanRange(lo, hi, &entries);
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::set<std::pair<int64_t, int64_t>> out;
    for (const auto& e : entries) out.insert({e.secondary_key, e.primary_key});
    return out;
  }

  std::string dir_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<SecondaryIndex> index_;
};

TEST_F(SecondaryIndexTest, InsertAndRangeScanInMemory) {
  ASSERT_TRUE(index_->Insert(10, 1).ok());
  ASSERT_TRUE(index_->Insert(20, 2).ok());
  ASSERT_TRUE(index_->Insert(20, 3).ok());
  ASSERT_TRUE(index_->Insert(30, 4).ok());
  auto got = Range(15, 25);
  EXPECT_EQ(got, (std::set<std::pair<int64_t, int64_t>>{{20, 2}, {20, 3}}));
  EXPECT_EQ(Range(INT64_MIN, INT64_MAX).size(), 4u);
}

TEST_F(SecondaryIndexTest, DeleteHidesEntryAcrossFlush) {
  ASSERT_TRUE(index_->Insert(10, 1).ok());
  ASSERT_TRUE(index_->Insert(10, 2).ok());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(index_->Delete(10, 1).ok());
  auto got = Range(10, 10);
  EXPECT_EQ(got, (std::set<std::pair<int64_t, int64_t>>{{10, 2}}));
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_EQ(Range(10, 10),
            (std::set<std::pair<int64_t, int64_t>>{{10, 2}}));
}

TEST_F(SecondaryIndexTest, FlushAndAutoMergeKeepCorrectness) {
  Rng rng(1);
  std::set<std::pair<int64_t, int64_t>> model;
  for (int64_t pk = 0; pk < 1500; ++pk) {
    int64_t sk = static_cast<int64_t>(rng.Uniform(200));
    if (model.count({sk, pk}) == 0 && rng.Bernoulli(0.9)) {
      ASSERT_TRUE(index_->Insert(sk, pk).ok());
      model.insert({sk, pk});
    }
  }
  // memtable_entries=100 → many flushes and auto-merges happened.
  EXPECT_LE(index_->component_count(), 6u);
  EXPECT_EQ(Range(INT64_MIN, INT64_MAX), model);
  // Spot ranges.
  for (int64_t lo = 0; lo < 200; lo += 37) {
    std::set<std::pair<int64_t, int64_t>> expected;
    for (const auto& e : model) {
      if (e.first >= lo && e.first <= lo + 10) expected.insert(e);
    }
    EXPECT_EQ(Range(lo, lo + 10), expected) << lo;
  }
}

TEST_F(SecondaryIndexTest, ReinsertAfterDelete) {
  ASSERT_TRUE(index_->Insert(5, 100).ok());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(index_->Delete(5, 100).ok());
  ASSERT_TRUE(index_->Flush().ok());
  ASSERT_TRUE(index_->Insert(5, 100).ok());
  EXPECT_EQ(Range(5, 5),
            (std::set<std::pair<int64_t, int64_t>>{{5, 100}}));
  ASSERT_TRUE(index_->MergeAll().ok());
  EXPECT_EQ(Range(5, 5),
            (std::set<std::pair<int64_t, int64_t>>{{5, 100}}));
  EXPECT_EQ(index_->component_count(), 1u);
}

TEST_F(SecondaryIndexTest, ContainsProbe) {
  ASSERT_TRUE(index_->Insert(42, 0).ok());
  ASSERT_TRUE(index_->Flush().ok());
  EXPECT_TRUE(*index_->Contains(42));
  EXPECT_FALSE(*index_->Contains(41));
}

class IndexedDatasetTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/idxds_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    cache_ = std::make_unique<BufferCache>(1024 * kPage, kPage);
    DatasetOptions options;
    options.layout = GetParam();
    options.dir = dir_;
    options.page_size = kPage;
    options.memtable_bytes = 48 * 1024;
    options.amax_max_records = 400;
    auto ds = IndexedDataset::Create(options, cache_.get());
    ASSERT_TRUE(ds.ok());
    dataset_ = std::move(*ds);
    ASSERT_TRUE(dataset_->DeclarePrimaryKeyIndex().ok());
    ASSERT_TRUE(dataset_->DeclareIndex("ts", {"timestamp"}).ok());
  }
  void TearDown() override {
    dataset_.reset();
    std::filesystem::remove_all(dir_);
  }

  Value MakeRecord(int64_t id, int64_t ts) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(id));
    v.Set("timestamp", Value::Int(ts));
    v.Set("text", Value::String("body_" + std::to_string(id)));
    return v;
  }

  std::string dir_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<IndexedDataset> dataset_;
};

TEST_P(IndexedDatasetTest, IndexScanReturnsMatchingRecords) {
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, 1000 + i)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  std::vector<int64_t> pks;
  ASSERT_TRUE(dataset_
                  ->IndexScan("ts", 1100, 1199, Projection::All(),
                              [&](int64_t pk, const Value& v) {
                                pks.push_back(pk);
                                EXPECT_EQ(v.Get("timestamp").int_value(),
                                          1000 + pk);
                              })
                  .ok());
  ASSERT_EQ(pks.size(), 100u);
  EXPECT_EQ(pks.front(), 100);
  EXPECT_EQ(pks.back(), 199);
  auto count = dataset_->IndexCount("ts", 1100, 1199);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 100u);
}

TEST_P(IndexedDatasetTest, UpdateMovesIndexEntry) {
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, i)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  // Move record 50's timestamp from 50 to 5000.
  ASSERT_TRUE(dataset_->Insert(MakeRecord(50, 5000)).ok());
  ASSERT_TRUE(dataset_->Flush().ok());
  auto low = dataset_->IndexCount("ts", 50, 50);
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(*low, 0u);
  auto high = dataset_->IndexCount("ts", 5000, 5000);
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(*high, 1u);
}

TEST_P(IndexedDatasetTest, DeleteCleansIndex) {
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, i * 10)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  ASSERT_TRUE(dataset_->Delete(30).ok());
  ASSERT_TRUE(dataset_->Flush().ok());
  auto count = dataset_->IndexCount("ts", 300, 300);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  // Neighbours unaffected.
  EXPECT_EQ(*dataset_->IndexCount("ts", 290, 310), 2u);
}

TEST_P(IndexedDatasetTest, UpdateIntensiveWorkloadStaysConsistent) {
  Rng rng(77);
  std::map<int64_t, int64_t> ts_of;  // model: pk -> timestamp
  for (int64_t i = 0; i < 600; ++i) {
    int64_t ts = static_cast<int64_t>(rng.Uniform(10000));
    ts_of[i] = ts;
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, ts)).ok());
  }
  // 50% random updates (uniform), as in §6.3.2.
  for (int round = 0; round < 300; ++round) {
    int64_t pk = static_cast<int64_t>(rng.Uniform(600));
    int64_t ts = static_cast<int64_t>(rng.Uniform(10000));
    ts_of[pk] = ts;
    ASSERT_TRUE(dataset_->Insert(MakeRecord(pk, ts)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  // Compare index-driven counts with the model for several ranges.
  for (int64_t lo = 0; lo < 10000; lo += 1700) {
    const int64_t hi = lo + 800;
    uint64_t expected = 0;
    for (const auto& [pk, ts] : ts_of) {
      if (ts >= lo && ts <= hi) ++expected;
    }
    auto got = dataset_->IndexCount("ts", lo, hi);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected) << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, IndexedDatasetTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

}  // namespace
}  // namespace lsmcol
