// Unit and property tests for the encoding module: bit-packing, RLE/bit-
// packed hybrid, delta binary packed, string codecs, and the LZ compressor.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/encoding/bitpack.h"
#include "src/encoding/delta.h"
#include "src/encoding/lz.h"
#include "src/encoding/rle.h"
#include "src/encoding/strings.h"

namespace lsmcol {
namespace {

TEST(BitWidthTest, Boundaries) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(UINT64_MAX), 64);
}

uint64_t WidthMask(int width) {
  return width >= 64 ? ~0ULL : (width == 0 ? 0 : ((1ULL << width) - 1));
}

void RoundTripBitPack(const std::vector<uint64_t>& values, int width) {
  Buffer out;
  BitPack(values.data(), values.size(), width, &out);
  ASSERT_EQ(out.size(), BitPackedSize(values.size(), width));
  std::vector<uint64_t> decoded(values.size());
  BufferReader reader(out.slice());
  ASSERT_TRUE(
      BitUnpack(&reader, decoded.size(), width, decoded.data()).ok());
  EXPECT_EQ(decoded, values);
  EXPECT_TRUE(reader.empty());
}

class BitPackWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackWidthTest, RoundTripsRandomValues) {
  const int width = GetParam();
  Rng rng(width * 101);
  std::vector<uint64_t> values(257);
  for (auto& v : values) v = rng.Next() & WidthMask(width);
  RoundTripBitPack(values, width);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackWidthTest,
                         ::testing::Values(0, 1, 2, 3, 5, 7, 8, 9, 13, 16, 21,
                                           31, 32, 33, 48, 57, 63, 64));

TEST(BitPackTest, TruncatedInputFails) {
  std::vector<uint64_t> values = {1, 2, 3, 4, 5, 6, 7, 8};
  Buffer out;
  BitPack(values.data(), values.size(), 7, &out);
  Slice truncated(out.data(), out.size() - 1);
  BufferReader reader(truncated);
  std::vector<uint64_t> decoded(8);
  EXPECT_TRUE(
      BitUnpack(&reader, 8, 7, decoded.data()).IsCorruption());
}

void RoundTripRle(const std::vector<uint64_t>& values, int width) {
  RleEncoder enc(width);
  for (uint64_t v : values) enc.Add(v);
  Buffer out;
  enc.FinishInto(&out);
  RleDecoder dec;
  ASSERT_TRUE(dec.Init(out.slice(), width).ok());
  EXPECT_EQ(dec.value_count(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t v = 0;
    ASSERT_TRUE(dec.Next(&v).ok()) << i;
    EXPECT_EQ(v, values[i]) << i;
  }
  uint64_t extra;
  EXPECT_FALSE(dec.Next(&extra).ok());
}

TEST(RleTest, EmptyStream) { RoundTripRle({}, 3); }

TEST(RleTest, LongRunsUseRle) {
  std::vector<uint64_t> values(1000, 5);
  RleEncoder enc(3);
  for (uint64_t v : values) enc.Add(v);
  Buffer out;
  enc.FinishInto(&out);
  EXPECT_LT(out.size(), 10u);  // count + header + value
  RoundTripRle(values, 3);
}

TEST(RleTest, AlternatingValuesUseBitPacking) {
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 2);
  RleEncoder enc(1);
  for (uint64_t v : values) enc.Add(v);
  Buffer out;
  enc.FinishInto(&out);
  EXPECT_LT(out.size(), 1000 / 8 + 32u);
  RoundTripRle(values, 1);
}

TEST(RleTest, MixedRunsAndNoise) {
  Rng rng(42);
  std::vector<uint64_t> values;
  for (int block = 0; block < 50; ++block) {
    if (rng.Bernoulli(0.5)) {
      uint64_t v = rng.Uniform(8);
      size_t len = rng.Uniform(60) + 1;
      values.insert(values.end(), len, v);
    } else {
      for (int i = 0; i < 13; ++i) values.push_back(rng.Uniform(8));
    }
  }
  RoundTripRle(values, 3);
}

TEST(RleTest, SkipAcrossRunBoundaries) {
  std::vector<uint64_t> values;
  values.insert(values.end(), 100, 1);
  for (int i = 0; i < 23; ++i) values.push_back(i % 4);
  values.insert(values.end(), 50, 2);
  RleEncoder enc(2);
  for (uint64_t v : values) enc.Add(v);
  Buffer out;
  enc.FinishInto(&out);

  for (size_t skip : {0u, 1u, 7u, 99u, 100u, 105u, 123u, 150u, 172u}) {
    RleDecoder dec;
    ASSERT_TRUE(dec.Init(out.slice(), 2).ok());
    ASSERT_TRUE(dec.Skip(skip).ok()) << skip;
    if (skip < values.size()) {
      uint64_t v = 0;
      ASSERT_TRUE(dec.Next(&v).ok());
      EXPECT_EQ(v, values[skip]) << skip;
    } else {
      uint64_t v;
      EXPECT_FALSE(dec.Next(&v).ok());
    }
  }
}

TEST(RleTest, SkipPastEndFails) {
  RleEncoder enc(1);
  enc.Add(1);
  Buffer out;
  enc.FinishInto(&out);
  RleDecoder dec;
  ASSERT_TRUE(dec.Init(out.slice(), 1).ok());
  EXPECT_FALSE(dec.Skip(2).ok());
}

TEST(RleTest, EncoderClearIsReusable) {
  RleEncoder enc(2);
  enc.Add(3);
  Buffer first;
  enc.FinishInto(&first);
  enc.Clear();
  enc.Add(1);
  enc.Add(1);
  Buffer second;
  enc.FinishInto(&second);
  RleDecoder dec;
  ASSERT_TRUE(dec.Init(second.slice(), 2).ok());
  EXPECT_EQ(dec.value_count(), 2u);
  uint64_t v = 0;
  ASSERT_TRUE(dec.Next(&v).ok());
  EXPECT_EQ(v, 1u);
}

void RoundTripDelta(const std::vector<int64_t>& values) {
  DeltaInt64Encoder enc;
  for (int64_t v : values) enc.Add(v);
  Buffer out;
  enc.FinishInto(&out);
  DeltaInt64Decoder dec;
  ASSERT_TRUE(dec.Init(out.slice()).ok());
  EXPECT_EQ(dec.value_count(), values.size());
  std::vector<int64_t> decoded;
  ASSERT_TRUE(dec.DecodeAll(&decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(DeltaTest, Empty) { RoundTripDelta({}); }
TEST(DeltaTest, Single) { RoundTripDelta({-7}); }

TEST(DeltaTest, MonotoneSequenceCompressesWell) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 10000; ++i) values.push_back(1600000000000 + i * 7);
  DeltaInt64Encoder enc;
  for (int64_t v : values) enc.Add(v);
  Buffer out;
  enc.FinishInto(&out);
  // Constant stride: each 64-value block costs a few bytes.
  EXPECT_LT(out.size(), 2000u);
  RoundTripDelta(values);
}

TEST(DeltaTest, RandomValuesRoundTrip) {
  Rng rng(7);
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<int64_t>(rng.Next()));
  }
  RoundTripDelta(values);
}

TEST(DeltaTest, ExtremesRoundTrip) {
  RoundTripDelta({std::numeric_limits<int64_t>::min(),
                  std::numeric_limits<int64_t>::max(),
                  std::numeric_limits<int64_t>::min(), 0, -1, 1});
}

TEST(DeltaTest, BlockBoundarySizes) {
  for (size_t n : {63u, 64u, 65u, 127u, 128u, 129u}) {
    std::vector<int64_t> values;
    for (size_t i = 0; i < n; ++i) values.push_back(static_cast<int64_t>(i * i));
    RoundTripDelta(values);
  }
}

TEST(DeltaTest, SkipThenNext) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 500; ++i) values.push_back(i * 3 - 100);
  DeltaInt64Encoder enc;
  for (int64_t v : values) enc.Add(v);
  Buffer out;
  enc.FinishInto(&out);
  for (size_t skip : {0u, 1u, 63u, 64u, 65u, 200u, 499u}) {
    DeltaInt64Decoder dec;
    ASSERT_TRUE(dec.Init(out.slice()).ok());
    ASSERT_TRUE(dec.Skip(skip).ok());
    int64_t v = 0;
    ASSERT_TRUE(dec.Next(&v).ok());
    EXPECT_EQ(v, values[skip]) << skip;
  }
}

TEST(DeltaLengthStringTest, RoundTrip) {
  std::vector<std::string> values = {"", "a", "hello world", "aaa",
                                     std::string(1000, 'x')};
  DeltaLengthStringEncoder enc;
  for (const auto& v : values) enc.Add(Slice(v));
  Buffer out;
  enc.FinishInto(&out);
  DeltaLengthStringDecoder dec;
  ASSERT_TRUE(dec.Init(out.slice()).ok());
  EXPECT_EQ(dec.value_count(), values.size());
  for (const auto& expected : values) {
    Slice got;
    ASSERT_TRUE(dec.Next(&got).ok());
    EXPECT_EQ(got.ToString(), expected);
  }
}

TEST(DeltaLengthStringTest, SkipLandsOnCorrectOffsets) {
  DeltaLengthStringEncoder enc;
  std::vector<std::string> values;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.Word(0, 20));
    enc.Add(Slice(values.back()));
  }
  Buffer out;
  enc.FinishInto(&out);
  for (size_t skip : {0u, 1u, 50u, 199u}) {
    DeltaLengthStringDecoder dec;
    ASSERT_TRUE(dec.Init(out.slice()).ok());
    ASSERT_TRUE(dec.Skip(skip).ok());
    Slice got;
    ASSERT_TRUE(dec.Next(&got).ok());
    EXPECT_EQ(got.ToString(), values[skip]);
  }
}

TEST(DeltaLengthStringTest, CorruptPayloadDetected) {
  DeltaLengthStringEncoder enc;
  enc.Add(Slice("hello"));
  Buffer out;
  enc.FinishInto(&out);
  Slice truncated(out.data(), out.size() - 2);
  DeltaLengthStringDecoder dec;
  EXPECT_FALSE(dec.Init(truncated).ok());
}

TEST(DeltaStringTest, SortedStringsCompressBetterThanPlainLengths) {
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back("user_prefix_common_" + std::to_string(100000 + i));
  }
  DeltaStringEncoder front;
  DeltaLengthStringEncoder plain;
  for (const auto& v : values) {
    front.Add(Slice(v));
    plain.Add(Slice(v));
  }
  Buffer front_out, plain_out;
  front.FinishInto(&front_out);
  plain.FinishInto(&plain_out);
  EXPECT_LT(front_out.size(), plain_out.size() / 2);

  DeltaStringDecoder dec;
  ASSERT_TRUE(dec.Init(front_out.slice()).ok());
  for (const auto& expected : values) {
    Slice got;
    ASSERT_TRUE(dec.Next(&got).ok());
    EXPECT_EQ(got.ToString(), expected);
  }
}

TEST(DeltaStringTest, UnsortedRoundTrip) {
  Rng rng(5);
  std::vector<std::string> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.Word(0, 15));
  DeltaStringEncoder enc;
  for (const auto& v : values) enc.Add(Slice(v));
  Buffer out;
  enc.FinishInto(&out);
  DeltaStringDecoder dec;
  ASSERT_TRUE(dec.Init(out.slice()).ok());
  ASSERT_TRUE(dec.Skip(100).ok());
  Slice got;
  ASSERT_TRUE(dec.Next(&got).ok());
  EXPECT_EQ(got.ToString(), values[100]);
}

void RoundTripLz(const std::string& input) {
  Buffer compressed;
  LzCompress(Slice(input), &compressed);
  EXPECT_LE(compressed.size(), LzMaxCompressedSize(input.size()));
  Buffer decompressed;
  ASSERT_TRUE(LzDecompress(compressed.slice(), &decompressed).ok());
  EXPECT_EQ(decompressed.slice().ToString(), input);
}

TEST(LzTest, Empty) { RoundTripLz(""); }
TEST(LzTest, Short) { RoundTripLz("abc"); }

TEST(LzTest, RepetitiveTextCompresses) {
  std::string input;
  for (int i = 0; i < 500; ++i) {
    input += "{\"name\":\"record\",\"index\":" + std::to_string(i) + "}";
  }
  Buffer compressed;
  LzCompress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 3);
  RoundTripLz(input);
}

TEST(LzTest, AllSameByte) { RoundTripLz(std::string(100000, 'z')); }

TEST(LzTest, RandomDataRoundTripsWithoutBlowup) {
  Rng rng(13);
  std::string input;
  for (int i = 0; i < 50000; ++i) {
    input.push_back(static_cast<char>(rng.Next() & 0xFF));
  }
  Buffer compressed;
  LzCompress(Slice(input), &compressed);
  EXPECT_LE(compressed.size(), LzMaxCompressedSize(input.size()));
  RoundTripLz(input);
}

TEST(LzTest, OverlappingMatchReplication) {
  // "abcabcabc..." exercises matches whose offset < length.
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "abc";
  RoundTripLz(input);
}

TEST(LzTest, CorruptStreamRejected) {
  Buffer compressed;
  LzCompress(Slice(std::string(1000, 'q')), &compressed);
  // Truncate mid-stream.
  Slice truncated(compressed.data(), compressed.size() / 2);
  Buffer out;
  EXPECT_FALSE(LzDecompress(truncated, &out).ok());
}

TEST(LzTest, MixedStructuredPayload) {
  Rng rng(99);
  std::string input;
  for (int i = 0; i < 300; ++i) {
    input += "sensor_" + std::to_string(rng.Uniform(50));
    input += rng.Word(1, 30);
    input += std::string(rng.Uniform(20), ' ');
  }
  RoundTripLz(input);
}

// ---------------------------------------------------------------------------
// Randomized round-trip property tests: many independent seeds per codec,
// with shape (empty / single value / runs / adversarial widths) drawn from
// the rng itself. The seed is reported on failure so a counterexample can be
// replayed by hand.
// ---------------------------------------------------------------------------

TEST(RlePropertyTest, RandomVectorsRoundTripAtEveryWidth) {
  // Every supported width (rle.cc CHECKs 0..32) is covered deterministically;
  // the vector shape is randomized per (width, round).
  for (int width = 0; width <= 32; ++width) {
    for (uint64_t round = 0; round < 2; ++round) {
      const uint64_t seed = static_cast<uint64_t>(width) * 2 + round;
      Rng rng(seed * 7919 + 1);
      const uint64_t mask = WidthMask(width);
      // Shapes: empty, single value, one long run, or mixed runs + noise.
      std::vector<uint64_t> values;
      switch ((seed + rng.Uniform(2)) % 4) {
        case 0:
          break;  // empty input
        case 1:
          values.push_back(rng.Next() & mask);  // single value
          break;
        case 2: {  // one maximal run
          const size_t run_len = rng.Uniform(2000) + 1;
          values.assign(run_len, rng.Next() & mask);
          break;
        }
        default:  // interleaved runs and noise
          while (values.size() < 500) {
            if (rng.Bernoulli(0.5)) {
              const size_t run_len = rng.Uniform(100) + 1;
              values.insert(values.end(), run_len, rng.Next() & mask);
            } else {
              for (int i = 0; i < 16; ++i) values.push_back(rng.Next() & mask);
            }
          }
      }
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " width=" + std::to_string(width) +
                   " n=" + std::to_string(values.size()));
      RoundTripRle(values, width);
    }
  }
}

TEST(BitPackPropertyTest, RandomLengthsAndWidthsRoundTrip) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 6361 + 3);
    const int width = static_cast<int>(rng.Uniform(65));
    // Half the seeds pin n to a word-boundary count so the partial-final-
    // word paths are guaranteed coverage; the rest draw random lengths.
    static constexpr size_t kBoundaryLengths[] = {0, 1, 63, 64, 65, 127, 128};
    const size_t n = (seed % 2 == 0)
                         ? kBoundaryLengths[seed / 2 % std::size(kBoundaryLengths)]
                         : rng.Uniform(200);
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = rng.Next() & WidthMask(width);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " width=" + std::to_string(width) + " n=" + std::to_string(n));
    RoundTripBitPack(values, width);
  }
}

TEST(DeltaPropertyTest, RandomVectorsRoundTrip) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 2741 + 5);
    std::vector<int64_t> values;
    const size_t n = rng.Uniform(300);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Uniform(4)) {
        case 0:  // full-range values force max-width delta blocks
          values.push_back(static_cast<int64_t>(rng.Next()));
          break;
        case 1:  // extremes stress the zig-zag/overflow arithmetic
          values.push_back(rng.Bernoulli(0.5)
                               ? std::numeric_limits<int64_t>::min()
                               : std::numeric_limits<int64_t>::max());
          break;
        case 2: {  // near-monotone, small strides (wrap-safe: previous
                   // entries may be INT64_MAX/MIN, so add in uint64)
          const uint64_t prev =
              static_cast<uint64_t>(values.empty() ? 0 : values.back());
          const uint64_t stride =
              static_cast<uint64_t>(rng.UniformRange(-3, 16));
          values.push_back(static_cast<int64_t>(prev + stride));
          break;
        }
        default:  // repeated value (zero deltas)
          values.push_back(values.empty() ? 42 : values.back());
      }
    }
    SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n));
    RoundTripDelta(values);
  }
}

void RoundTripStrings(const std::vector<std::string>& values) {
  DeltaLengthStringEncoder plain;
  DeltaStringEncoder front;
  for (const auto& v : values) {
    plain.Add(Slice(v));
    front.Add(Slice(v));
  }
  Buffer plain_out, front_out;
  plain.FinishInto(&plain_out);
  front.FinishInto(&front_out);

  DeltaLengthStringDecoder plain_dec;
  ASSERT_TRUE(plain_dec.Init(plain_out.slice()).ok());
  ASSERT_EQ(plain_dec.value_count(), values.size());
  DeltaStringDecoder front_dec;
  ASSERT_TRUE(front_dec.Init(front_out.slice()).ok());
  ASSERT_EQ(front_dec.value_count(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    Slice got;
    ASSERT_TRUE(plain_dec.Next(&got).ok()) << i;
    EXPECT_EQ(got.ToString(), values[i]) << i;
    ASSERT_TRUE(front_dec.Next(&got).ok()) << i;
    EXPECT_EQ(got.ToString(), values[i]) << i;
  }
  // Both streams must be exhausted: no extra trailing values.
  Slice extra;
  EXPECT_FALSE(plain_dec.Next(&extra).ok());
  EXPECT_EQ(front_dec.remaining(), 0u);
  EXPECT_FALSE(front_dec.Next(&extra).ok());
}

TEST(StringCodecPropertyTest, RandomVectorsRoundTripBothCodecs) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 104729 + 11);
    std::vector<std::string> values;
    switch (rng.Uniform(4)) {
      case 0:
        break;  // empty input
      case 1:
        values.push_back(rng.Word(0, 64));  // single entry (possibly "")
        break;
      case 2:  // dictionary-ish: few distinct values, long repeated runs
      {
        std::vector<std::string> dict;
        for (int i = 0; i < 8; ++i) dict.push_back(rng.Word(0, 12));
        for (int i = 0; i < 400; ++i) values.push_back(dict[rng.Uniform(8)]);
        break;
      }
      default:  // shared prefixes + a max-length outlier
        for (int i = 0; i < 200; ++i) {
          values.push_back("prefix/" + rng.Word(0, 24));
        }
        values.push_back(std::string(64 * 1024, 'M'));
    }
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " n=" + std::to_string(values.size()));
    RoundTripStrings(values);
  }
}

// ----------------------------------------------------- batch decode APIs

// A stream with RLE runs, bit-packed noise, and run boundaries landing
// both on and off typical batch sizes.
std::vector<uint64_t> MixedRleStream() {
  std::vector<uint64_t> values;
  values.insert(values.end(), 100, 3);          // RLE run
  for (int i = 0; i < 37; ++i) values.push_back(i % 5);  // bit-packed
  values.insert(values.end(), 1000, 6);         // long RLE run
  values.push_back(1);                          // singleton
  values.insert(values.end(), 20, 0);           // RLE run
  return values;
}

Buffer EncodeRle(const std::vector<uint64_t>& values, int width) {
  RleEncoder enc(width);
  for (uint64_t v : values) enc.Add(v);
  Buffer out;
  enc.FinishInto(&out);
  return out;
}

TEST(RleBatchTest, DecodeBatchMatchesNextAcrossRunBoundaries) {
  const std::vector<uint64_t> values = MixedRleStream();
  Buffer encoded = EncodeRle(values, 3);
  // Batch sizes chosen so encoded runs straddle every batch boundary.
  for (size_t batch : {1ul, 7ul, 64ul, 333ul, values.size(), 100000ul}) {
    RleDecoder dec;
    ASSERT_TRUE(dec.Init(encoded.slice(), 3).ok());
    std::vector<uint64_t> decoded;
    std::vector<uint64_t> scratch(batch);
    while (dec.remaining() > 0) {
      size_t got = 0;
      ASSERT_TRUE(dec.DecodeBatch(batch, scratch.data(), &got).ok());
      ASSERT_GT(got, 0u);
      decoded.insert(decoded.end(), scratch.begin(), scratch.begin() + got);
    }
    EXPECT_EQ(decoded, values) << "batch=" << batch;
    // Exhausted decoder yields empty batches, not errors.
    size_t got = 1;
    ASSERT_TRUE(dec.DecodeBatch(batch, scratch.data(), &got).ok());
    EXPECT_EQ(got, 0u);
  }
}

TEST(RleBatchTest, DecodeBatchInterleavesWithNextAndSkip) {
  const std::vector<uint64_t> values = MixedRleStream();
  Buffer encoded = EncodeRle(values, 3);
  RleDecoder dec;
  ASSERT_TRUE(dec.Init(encoded.slice(), 3).ok());
  std::vector<uint64_t> scratch(50);
  size_t got = 0;
  ASSERT_TRUE(dec.DecodeBatch(50, scratch.data(), &got).ok());
  uint64_t v = 0;
  ASSERT_TRUE(dec.Next(&v).ok());
  EXPECT_EQ(v, values[50]);
  ASSERT_TRUE(dec.Skip(60).ok());  // crosses into the bit-packed region
  ASSERT_TRUE(dec.DecodeBatch(10, scratch.data(), &got).ok());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(scratch[i], values[111 + i]);
}

TEST(RleBatchTest, DecodeRunsSurfacesRunStructure) {
  std::vector<uint64_t> values;
  values.insert(values.end(), 80, 2);
  values.insert(values.end(), 30, 5);
  Buffer encoded = EncodeRle(values, 3);
  RleDecoder dec;
  ASSERT_TRUE(dec.Init(encoded.slice(), 3).ok());
  std::vector<RleRun> runs;
  ASSERT_TRUE(dec.DecodeRuns(values.size(), &runs).ok());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].value, 2u);
  EXPECT_EQ(runs[0].count, 80u);
  EXPECT_EQ(runs[1].value, 5u);
  EXPECT_EQ(runs[1].count, 30u);
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(RleBatchTest, DecodeRunsHonorsMaxValuesMidRun) {
  std::vector<uint64_t> values(100, 7);
  Buffer encoded = EncodeRle(values, 3);
  RleDecoder dec;
  ASSERT_TRUE(dec.Init(encoded.slice(), 3).ok());
  std::vector<RleRun> runs;
  ASSERT_TRUE(dec.DecodeRuns(30, &runs).ok());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].count, 30u);
  ASSERT_TRUE(dec.DecodeRuns(1000, &runs).ok());  // resumes; coalesces
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].count, 100u);
}

TEST(RleBatchTest, SkipAndCountCountsTargetRunGranular) {
  const std::vector<uint64_t> values = MixedRleStream();
  Buffer encoded = EncodeRle(values, 3);
  for (uint64_t target : {0ull, 3ull, 6ull}) {
    RleDecoder dec;
    ASSERT_TRUE(dec.Init(encoded.slice(), 3).ok());
    size_t count = 0;
    const size_t n = 700;
    ASSERT_TRUE(dec.SkipAndCount(n, target, &count).ok());
    size_t expected = 0;
    for (size_t i = 0; i < n; ++i) expected += values[i] == target ? 1 : 0;
    EXPECT_EQ(count, expected) << "target=" << target;
    // The decoder continues correctly after the counted skip.
    uint64_t v = 0;
    ASSERT_TRUE(dec.Next(&v).ok());
    EXPECT_EQ(v, values[n]);
  }
}

TEST(DeltaBatchTest, DecodeBatchMatchesNextAcrossBlockBoundaries) {
  Rng rng(7);
  std::vector<int64_t> values;
  int64_t acc = 0;
  for (int i = 0; i < 1000; ++i) {  // > 15 blocks of 64
    acc += static_cast<int64_t>(rng.Uniform(1000)) - 500;
    values.push_back(acc);
  }
  DeltaInt64Encoder enc;
  for (int64_t v : values) enc.Add(v);
  Buffer encoded;
  enc.FinishInto(&encoded);
  for (size_t batch : {1ul, 63ul, 64ul, 65ul, 500ul, 1000ul}) {
    DeltaInt64Decoder dec;
    ASSERT_TRUE(dec.Init(encoded.slice()).ok());
    std::vector<int64_t> decoded;
    std::vector<int64_t> scratch(batch);
    while (dec.remaining() > 0) {
      size_t got = 0;
      ASSERT_TRUE(dec.DecodeBatch(batch, scratch.data(), &got).ok());
      decoded.insert(decoded.end(), scratch.begin(), scratch.begin() + got);
    }
    EXPECT_EQ(decoded, values) << "batch=" << batch;
  }
}

TEST(DeltaBatchTest, BlockGranularSkipInterleavesWithBatches) {
  std::vector<int64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(i * 3);
  DeltaInt64Encoder enc;
  for (int64_t v : values) enc.Add(v);
  Buffer encoded;
  enc.FinishInto(&encoded);
  DeltaInt64Decoder dec;
  ASSERT_TRUE(dec.Init(encoded.slice()).ok());
  ASSERT_TRUE(dec.Skip(129).ok());  // two full blocks + 1 (plus first value)
  std::vector<int64_t> scratch(100);
  size_t got = 0;
  ASSERT_TRUE(dec.DecodeBatch(100, scratch.data(), &got).ok());
  ASSERT_EQ(got, 100u);
  for (size_t i = 0; i < got; ++i) EXPECT_EQ(scratch[i], values[129 + i]);
  ASSERT_TRUE(dec.Skip(dec.remaining()).ok());
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(DeltaBatchTest, SingleValueAndEmptyBatches) {
  DeltaInt64Encoder enc;
  enc.Add(42);
  Buffer encoded;
  enc.FinishInto(&encoded);
  DeltaInt64Decoder dec;
  ASSERT_TRUE(dec.Init(encoded.slice()).ok());
  int64_t out[2] = {0, 0};
  size_t got = 0;
  ASSERT_TRUE(dec.DecodeBatch(2, out, &got).ok());
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(out[0], 42);
  ASSERT_TRUE(dec.DecodeBatch(2, out, &got).ok());
  EXPECT_EQ(got, 0u);
}

TEST(StringBatchTest, NextBatchRawReturnsContiguousPayload) {
  DeltaLengthStringEncoder enc;
  enc.Add(Slice("alpha"));
  enc.Add(Slice(""));
  enc.Add(Slice("bc"));
  enc.Add(Slice("delta"));
  Buffer encoded;
  enc.FinishInto(&encoded);
  DeltaLengthStringDecoder dec;
  ASSERT_TRUE(dec.Init(encoded.slice()).ok());
  const int64_t* lengths = nullptr;
  Slice payload;
  ASSERT_TRUE(dec.NextBatchRaw(3, &lengths, &payload).ok());
  EXPECT_EQ(lengths[0], 5);
  EXPECT_EQ(lengths[1], 0);
  EXPECT_EQ(lengths[2], 2);
  EXPECT_EQ(payload.ToString(), "alphabc");
  Slice last;
  ASSERT_TRUE(dec.Next(&last).ok());
  EXPECT_EQ(last.ToString(), "delta");
  EXPECT_FALSE(dec.NextBatchRaw(1, &lengths, &payload).ok());
}

TEST(StringBatchTest, NextBatchSlicesInterleaveWithSkip) {
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) values.push_back("v" + std::to_string(i));
  DeltaLengthStringEncoder enc;
  for (const auto& v : values) enc.Add(Slice(v));
  Buffer encoded;
  enc.FinishInto(&encoded);
  DeltaLengthStringDecoder dec;
  ASSERT_TRUE(dec.Init(encoded.slice()).ok());
  ASSERT_TRUE(dec.Skip(57).ok());
  std::vector<Slice> out(1000);
  size_t got = 0;
  ASSERT_TRUE(dec.NextBatch(1000, out.data(), &got).ok());  // clamped
  ASSERT_EQ(got, values.size() - 57);
  for (size_t i = 0; i < got; ++i) {
    EXPECT_EQ(out[i].ToString(), values[57 + i]) << i;
  }
}

}  // namespace
}  // namespace lsmcol
