// Compaction-policy suite (src/lsm/compaction_policy.h):
//
//  * deterministic plan-selection simulations — each policy driven
//    through scripted component stacks (injected descriptors, no I/O),
//    asserting the exact merge plans chosen, the per-policy structural
//    invariants (tiered: size-ratio prefix grouping; leveled: at most
//    one run per level >= 1), and that quarantined components are never
//    selected;
//  * randomized cross-policy equivalence x4 layouts: one seeded
//    ingest/update/delete schedule under tiered, leveled, and
//    lazy-leveling must produce identical Scan and Lookup results,
//    including across close/reopen;
//  * amplification accounting: exact write-amp on a hand-computed
//    scenario, counter monotonicity under a random schedule, and the
//    Store::Health() rollup;
//  * the policy-derived writer-stall threshold: leveled back-pressure
//    must surface a background flush fault and fully recover, never
//    wedge (extends the tiered re-arm regression in wal_test.cc).
//
// Everything here is deterministic — fixed seeds, no scheduler except
// the single-threaded back-pressure regression, no timing dependence.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/json/parser.h"
#include "src/lsm/compaction_policy.h"
#include "src/lsm/dataset.h"
#include "src/storage/fault_injection_fs.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

// ------------------------------------------------- plan-selection helpers

/// Newest-first descriptor stack from plain sizes (ids descend with age,
/// like real component ids).
std::vector<CompactionComponentView> Views(
    const std::vector<uint64_t>& sizes) {
  std::vector<CompactionComponentView> views;
  uint64_t id = sizes.size();
  for (uint64_t size : sizes) {
    CompactionComponentView view;
    view.component_id = id--;
    view.size_bytes = size;
    view.entry_count = size / 64;
    views.push_back(view);
  }
  return views;
}

std::unique_ptr<CompactionPolicy> Tiered(double size_ratio = 1.2,
                                         int max_components = 5) {
  DatasetOptions options;
  options.size_ratio = size_ratio;
  options.max_components = max_components;
  return MakeCompactionPolicy(options);
}

std::unique_ptr<CompactionPolicy> Leveled(uint64_t base_bytes, int fanout = 4,
                                          int level0 = 4) {
  DatasetOptions options;
  options.compaction.strategy = CompactionStrategy::kLeveled;
  options.compaction.level_base_bytes = base_bytes;
  options.compaction.level_fanout = fanout;
  options.compaction.level0_components = level0;
  return MakeCompactionPolicy(options);
}

std::unique_ptr<CompactionPolicy> LazyLeveling(double size_ratio = 1.2,
                                               int max_components = 5,
                                               int fanout = 4) {
  DatasetOptions options;
  options.compaction.strategy = CompactionStrategy::kLazyLeveling;
  options.size_ratio = size_ratio;
  options.max_components = max_components;
  options.compaction.level_fanout = fanout;
  return MakeCompactionPolicy(options);
}

/// Independent reimplementation of the historical tiering rule (§6.3),
/// the oracle the default policy must match bit-for-bit.
size_t ReferenceTieredCount(const std::vector<uint64_t>& sizes,
                            double size_ratio, int max_components) {
  const size_t n = sizes.size();
  if (n < 2) return 0;
  size_t merge_count = 0;
  uint64_t younger_total = 0;
  for (size_t i = 0; i + 1 <= n; ++i) {
    if (i > 0) younger_total += sizes[i - 1];
    if (i >= 1 && static_cast<double>(younger_total) >=
                      size_ratio * static_cast<double>(sizes[i])) {
      merge_count = i + 1;
    }
  }
  if (merge_count < 2 && n > static_cast<size_t>(max_components)) {
    merge_count = 2;
  }
  return merge_count < 2 ? 0 : merge_count;
}

/// The leveled policy's size classes, reimplemented for invariant checks.
size_t LevelOf(uint64_t size, uint64_t base, int fanout) {
  uint64_t cap = base;
  size_t level = 0;
  while (size > cap) {
    ++level;
    cap *= static_cast<uint64_t>(fanout);
  }
  return level;
}

/// Apply `plan` to a simulated stack: the merged range is replaced by
/// one component of the summed size (no annihilation — the conservative
/// upper bound a size-only simulation can know).
void ApplyPlan(std::vector<uint64_t>* sizes, const CompactionPlan& plan) {
  ASSERT_LE(plan.end(), sizes->size());
  uint64_t out = 0;
  for (size_t i = plan.begin; i < plan.end(); ++i) out += (*sizes)[i];
  sizes->erase(sizes->begin() + static_cast<long>(plan.begin),
               sizes->begin() + static_cast<long>(plan.end()));
  sizes->insert(sizes->begin() + static_cast<long>(plan.begin), out);
}

// ------------------------------------------------------- tiered policy

TEST(TieredPolicyTest, HandComputedPlans) {
  auto policy = Tiered(1.2, 5);
  EXPECT_STREQ(policy->name(), "tiered");
  // Singleton and empty stacks: nothing to merge.
  EXPECT_TRUE(policy->PickMerge(Views({})).none());
  EXPECT_TRUE(policy->PickMerge(Views({100})).none());
  // Two equal components miss the 1.2 ratio (100 < 120).
  EXPECT_TRUE(policy->PickMerge(Views({100, 100})).none());
  // Ratio trigger: 100 >= 1.2 * 80.
  CompactionPlan plan = policy->PickMerge(Views({100, 80}));
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 2u);
  // The *longest* qualifying prefix wins: [100,100,100] accumulates
  // 200 >= 120 at i=2, then 300 >= 120 at... (n=3) -> whole prefix.
  plan = policy->PickMerge(Views({100, 100, 100}));
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 3u);
  // Steeply descending sizes never meet the ratio; under the component
  // cap that means no merge at all.
  EXPECT_TRUE(
      policy->PickMerge(Views({10, 100, 1000, 10000, 100000})).none());
  // Over the cap the historical fallback merges exactly the two newest.
  plan = policy->PickMerge(Views({10, 100, 1000, 10000, 100000, 1000000}));
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 2u);
}

TEST(TieredPolicyTest, ScriptedSequenceMatchesHistoricalRule) {
  // Drive a 200-flush scripted sequence through the policy and assert
  // every plan equals the independent reimplementation of the
  // historical rule — the bit-for-bit compatibility the default policy
  // promises (plans are always newest-prefixes of the same length).
  auto policy = Tiered(1.2, 5);
  std::vector<uint64_t> sizes;
  for (int flush = 0; flush < 200; ++flush) {
    sizes.insert(sizes.begin(), 100 + (static_cast<uint64_t>(flush) * 37) % 211);
    for (;;) {
      const CompactionPlan plan = policy->PickMerge(Views(sizes));
      const size_t want =
          ReferenceTieredCount(sizes, /*size_ratio=*/1.2, /*max_components=*/5);
      if (want == 0) {
        ASSERT_TRUE(plan.none()) << "flush " << flush;
        break;
      }
      ASSERT_EQ(plan.begin, 0u) << "flush " << flush;
      ASSERT_EQ(plan.count, want) << "flush " << flush;
      ApplyPlan(&sizes, plan);
    }
    // Size-ratio grouping invariant: once the policy is satisfied, no
    // newest-prefix reaches size_ratio x its oldest member.
    uint64_t younger = 0;
    for (size_t i = 1; i < sizes.size(); ++i) {
      younger += sizes[i - 1];
      ASSERT_LT(static_cast<double>(younger),
                1.2 * static_cast<double>(sizes[i]))
          << "flush " << flush << " prefix " << i;
    }
    ASSERT_LE(sizes.size(), 5u) << "flush " << flush;
  }
}

TEST(TieredPolicyTest, QuarantineSuspendsMerging) {
  auto policy = Tiered(1.2, 2);
  // Without damage this stack merges (over the cap).
  std::vector<CompactionComponentView> views =
      Views({10, 100, 1000, 10000});
  ASSERT_FALSE(policy->PickMerge(views).none());
  // Any quarantined component suspends the tiered policy entirely (the
  // historical behavior: quarantine is an operator decision point).
  for (size_t i = 0; i < views.size(); ++i) {
    auto damaged = views;
    damaged[i].quarantined = true;
    EXPECT_TRUE(policy->PickMerge(damaged).none()) << "quarantined " << i;
  }
}

// ------------------------------------------------------ leveled policy

TEST(LeveledPolicyTest, LevelZeroAccumulatesThenMerges) {
  auto policy = Leveled(/*base_bytes=*/1000, /*fanout=*/4, /*level0=*/4);
  EXPECT_STREQ(policy->name(), "leveled");
  // Below the level-0 trigger nothing happens: flushes accumulate.
  EXPECT_TRUE(policy->PickMerge(Views({500})).none());
  EXPECT_TRUE(policy->PickMerge(Views({500, 500})).none());
  EXPECT_TRUE(policy->PickMerge(Views({500, 500, 500})).none());
  // The fourth flush triggers a merge of exactly the level-0 backlog.
  CompactionPlan plan = policy->PickMerge(Views({500, 500, 500, 500}));
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 4u);
}

TEST(LeveledPolicyTest, CascadeAbsorbsReachedLevels) {
  auto policy = Leveled(1000, 4, 4);
  // Four 500-byte flushes merge to 2000 bytes — level 1 (<= 4000) — so
  // the level-1 resident (3000) is absorbed in the same plan; the
  // output (5000) then reaches level 2 and absorbs 12000 too.
  CompactionPlan plan =
      policy->PickMerge(Views({500, 500, 500, 500, 3000, 12000}));
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 6u);
  // A deep resident out of the output's reach is left alone.
  plan = policy->PickMerge(Views({500, 500, 500, 500, 60000}));
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 4u);
}

TEST(LeveledPolicyTest, MidStackPairRepairsSharedLevel) {
  auto policy = Leveled(1000, 4, 4);
  // One fresh flush, then two runs sharing level 1: the policy repairs
  // the invariant with a partial (mid-stack) merge, leaving the still-
  // accumulating level-0 backlog untouched.
  CompactionPlan plan = policy->PickMerge(Views({500, 2000, 3000}));
  EXPECT_EQ(plan.begin, 1u);
  EXPECT_EQ(plan.count, 2u);
  // The level-0 backlog itself is never nibbled two-at-a-time.
  EXPECT_TRUE(policy->PickMerge(Views({500, 500, 3000})).none());
}

TEST(LeveledPolicyTest, QuarantineFencesButDoesNotWedge) {
  auto policy = Leveled(1000, 4, 4);
  // A quarantined mid-stack component fences everything older, but the
  // healthy newest prefix still compacts — ingest must not wedge behind
  // damage. The quarantined index (4) is never part of a plan.
  std::vector<CompactionComponentView> views =
      Views({500, 500, 500, 500, 5000, 500});
  views[4].quarantined = true;
  CompactionPlan plan = policy->PickMerge(views);
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 4u);
  // A quarantined component directly behind a single flush: no legal
  // merge exists.
  views = Views({500, 5000});
  views[1].quarantined = true;
  EXPECT_TRUE(policy->PickMerge(views).none());
}

TEST(LeveledPolicyTest, SimulatedIngestKeepsOneRunPerLevel) {
  // 300 simulated flushes of varying (deterministic) sizes, merging to
  // quiescence after each: the defining leveled invariants must hold at
  // every quiescent point — at most one run per level >= 1, levels
  // non-decreasing with age, level-0 backlog under the trigger.
  const uint64_t base = 1000;
  const int fanout = 4;
  auto policy = Leveled(base, fanout, 4);
  Rng rng(20260808);
  std::vector<uint64_t> sizes;
  for (int flush = 0; flush < 300; ++flush) {
    sizes.insert(sizes.begin(), 200 + rng.Uniform(801));  // <= base
    for (;;) {
      const CompactionPlan plan = policy->PickMerge(Views(sizes));
      if (plan.none()) break;
      ApplyPlan(&sizes, plan);
    }
    std::map<size_t, int> runs_per_level;
    size_t previous_level = 0;
    for (size_t i = 0; i < sizes.size(); ++i) {
      const size_t level = LevelOf(sizes[i], base, fanout);
      ++runs_per_level[level];
      ASSERT_GE(level, previous_level)
          << "flush " << flush << ": levels must grow with age";
      previous_level = level;
    }
    for (const auto& [level, runs] : runs_per_level) {
      if (level == 0) {
        ASSERT_LT(runs, 4) << "flush " << flush << ": level-0 over trigger";
      } else {
        ASSERT_EQ(runs, 1)
            << "flush " << flush << ": level " << level << " has " << runs
            << " runs";
      }
    }
  }
}

// ------------------------------------------------ lazy-leveling policy

TEST(LazyLevelingPolicyTest, YoungPartTiersOldestStaysSingle) {
  auto policy = LazyLeveling(1.2, 5, 4);
  EXPECT_STREQ(policy->name(), "lazy-leveling");
  // The young part obeys the tiered rule among themselves: three equal
  // young components group (200 >= 1.2 * 100) without touching the
  // last-level run (2000 > 4 * 300).
  CompactionPlan plan = policy->PickMerge(Views({100, 100, 100, 2000}));
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 3u);
  // Steeply descending young sizes satisfy the tiered rule, and the
  // young part (11100 bytes) is under 1/4 of the big run: no merge.
  EXPECT_TRUE(policy->PickMerge(Views({100, 1000, 10000, 100000})).none());
}

TEST(LazyLevelingPolicyTest, AbsorbsWhenYoungReachesFractionOfOldest) {
  auto policy = LazyLeveling(1.2, 5, 4);
  // Young total 41000; 41000 * 4 >= 100000 — absorb everything into a
  // single new last-level run.
  CompactionPlan plan = policy->PickMerge(Views({30000, 1000, 10000, 100000}));
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 4u);
}

TEST(LazyLevelingPolicyTest, QuarantineHidesOldestAndYoungStillTiers) {
  auto policy = LazyLeveling(1.2, 5, 4);
  std::vector<CompactionComponentView> views =
      Views({100, 100, 100, 500, 100000});
  views[3].quarantined = true;
  // The quarantined component hides the last-level run: the healthy
  // young prefix tiers among itself and never selects index 3 or 4.
  CompactionPlan plan = policy->PickMerge(views);
  EXPECT_EQ(plan.begin, 0u);
  EXPECT_EQ(plan.count, 3u);
}

TEST(LazyLevelingPolicyTest, SimulatedIngestKeepsSingleLastLevelRun) {
  // Quiescent-state invariant: one big run at the bottom, a tiered
  // young part above it that never exceeds max_components.
  auto policy = LazyLeveling(1.2, 4, 4);
  Rng rng(97);
  std::vector<uint64_t> sizes;
  for (int flush = 0; flush < 300; ++flush) {
    sizes.insert(sizes.begin(), 200 + rng.Uniform(801));
    for (;;) {
      const CompactionPlan plan = policy->PickMerge(Views(sizes));
      if (plan.none()) break;
      ApplyPlan(&sizes, plan);
    }
    if (sizes.size() < 2) continue;
    // Young components stay under max_components, and their combined
    // size stays under 1/fanout of the last-level run.
    ASSERT_LE(sizes.size() - 1, 4u) << "flush " << flush;
    uint64_t young = 0;
    for (size_t i = 0; i + 1 < sizes.size(); ++i) young += sizes[i];
    ASSERT_LT(young * 4, sizes.back()) << "flush " << flush;
  }
}

// ------------------------------------------------- stall-limit contract

TEST(CompactionPolicyTest, StallLimitsDeriveFromThePolicy) {
  // Tiered keeps the historical hardcoded bound exactly (bit-for-bit
  // behavioral compatibility includes back-pressure).
  EXPECT_EQ(Tiered(1.2, 5)->stall_component_limit(), 10u);
  EXPECT_EQ(Tiered(1.2, 3)->stall_component_limit(), 6u);
  // The others must leave room above their steady-state stack depth
  // (leveled: level0 backlog + one run per level; lazy: tiered young
  // part + the last-level run) or healthy workloads would stall.
  EXPECT_GE(Leveled(1000, 4, 4)->stall_component_limit(), 8u);
  EXPECT_GE(LazyLeveling(1.2, 5, 4)->stall_component_limit(), 11u);
}

TEST(CompactionPolicyTest, OptionsAreValidated) {
  BufferCache cache(64 * kPage, kPage);
  DatasetOptions options;
  options.dir = testing::TempDir() + "/compaction_validate";
  options.compaction.level_fanout = 1;
  auto ds = Dataset::Open(options, &cache);
  ASSERT_FALSE(ds.ok());
  EXPECT_NE(ds.status().ToString().find("compaction.level_fanout"),
            std::string::npos)
      << ds.status().ToString();
  options.compaction.level_fanout = 65;
  EXPECT_FALSE(Dataset::Open(options, &cache).ok());
  options.compaction.level_fanout = 4;
  options.compaction.level0_components = 1;
  ds = Dataset::Open(options, &cache);
  ASSERT_FALSE(ds.ok());
  EXPECT_NE(ds.status().ToString().find("compaction.level0_components"),
            std::string::npos)
      << ds.status().ToString();

  StoreOptions store_options;
  store_options.dir = testing::TempDir() + "/compaction_validate_store";
  store_options.compaction.level_fanout = 0;
  auto store = Store::Open(store_options);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().ToString().find("StoreOptions.compaction"),
            std::string::npos)
      << store.status().ToString();
  std::filesystem::remove_all(options.dir);
  std::filesystem::remove_all(store_options.dir);
}

// ------------------------------------- cross-policy result equivalence

Value MakeRecord(int64_t id, uint64_t version) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("name", Value::String("user_" + std::to_string(id) + "_v" +
                              std::to_string(version)));
  v.Set("score", Value::Double(static_cast<double>(id) * 0.25 +
                               static_cast<double>(version)));
  Value nested = Value::MakeObject();
  nested.Set("level", Value::Int(id % 5));
  v.Set("meta", std::move(nested));
  return v;
}

class CompactionEquivalenceTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/compaction_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    cache_ = std::make_unique<BufferCache>(1024 * kPage, kPage);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  DatasetOptions BaseOptions(CompactionStrategy strategy) {
    DatasetOptions options;
    options.layout = GetParam();
    options.dir = dir_;
    options.name = std::string("ds_") + CompactionStrategyName(strategy);
    options.page_size = kPage;
    // Tiny memtable: the schedule below forces dozens of automatic
    // flushes, so each policy runs many real (inline, deterministic)
    // merges over genuinely overlapping components.
    options.memtable_bytes = 4 * 1024;
    options.compaction.strategy = strategy;
    options.compaction.level_base_bytes = 48 * 1024;
    options.amax_max_records = 64;
    return options;
  }

  static std::unique_ptr<Dataset> MustOpen(const DatasetOptions& options,
                                           BufferCache* cache) {
    auto ds = Dataset::Open(options, cache);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    return std::move(*ds);
  }

  static std::map<int64_t, std::string> ScanAll(Dataset* ds) {
    std::map<int64_t, std::string> out;
    auto cursor = ds->Scan(Projection::All());
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    while (true) {
      auto ok = (*cursor)->Next();
      EXPECT_TRUE(ok.ok()) << ok.status().ToString();
      if (!*ok) break;
      Value v;
      Status st = (*cursor)->Record(&v);
      EXPECT_TRUE(st.ok()) << st.ToString();
      const int64_t key = (*cursor)->key();
      EXPECT_EQ(out.count(key), 0u) << "duplicate key " << key;
      out[key] = ToJson(v);
    }
    return out;
  }

  std::string dir_;
  std::unique_ptr<BufferCache> cache_;
};

TEST_P(CompactionEquivalenceTest, PoliciesAgreeOnSeededSchedule) {
  constexpr CompactionStrategy kStrategies[] = {
      CompactionStrategy::kTiered, CompactionStrategy::kLeveled,
      CompactionStrategy::kLazyLeveling};
  constexpr int64_t kKeySpace = 150;

  // One seeded schedule, replayed identically per policy (fresh Rng per
  // dataset so the op streams are byte-identical).
  std::vector<std::map<int64_t, std::string>> scans;
  for (CompactionStrategy strategy : kStrategies) {
    auto ds = MustOpen(BaseOptions(strategy), cache_.get());
    Rng rng(0xC0FFEE);
    for (int op = 0; op < 600; ++op) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(kKeySpace));
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE(ds->Delete(key).ok());
      } else {
        ASSERT_TRUE(
            ds->Insert(MakeRecord(key, static_cast<uint64_t>(op))).ok());
      }
    }
    ASSERT_TRUE(ds->Flush().ok());
    scans.push_back(ScanAll(ds.get()));
    // Point lookups across the whole key space must agree with the scan
    // (and therefore across policies).
    for (int64_t key = 0; key < kKeySpace; ++key) {
      Value v;
      Status st = ds->Lookup(key, &v);
      if (scans.back().count(key) == 0) {
        EXPECT_TRUE(st.IsNotFound()) << "key " << key << ": " << st.ToString();
      } else {
        ASSERT_TRUE(st.ok()) << "key " << key << ": " << st.ToString();
        EXPECT_EQ(ToJson(v), scans.back()[key]) << "key " << key;
      }
    }
    // The merge cadence must differ per policy, but stats stay sane.
    const DatasetStats stats = ds->stats();
    EXPECT_GT(stats.flushes, 0u);
    EXPECT_GE(stats.write_amplification(), 1.0);
  }
  ASSERT_EQ(scans.size(), 3u);
  EXPECT_EQ(scans[0], scans[1]) << "tiered vs leveled";
  EXPECT_EQ(scans[0], scans[2]) << "tiered vs lazy-leveling";
  EXPECT_FALSE(scans[0].empty());

  // Reopen every dataset (fresh manifest recovery) — and reopen each
  // under a *different* policy than wrote it, which must be legal (the
  // policy is a runtime knob) and change nothing about the contents.
  for (size_t i = 0; i < 3; ++i) {
    DatasetOptions options = BaseOptions(kStrategies[i]);
    options.compaction.strategy = kStrategies[(i + 1) % 3];
    auto ds = MustOpen(options, cache_.get());
    EXPECT_EQ(ScanAll(ds.get()), scans[i])
        << "reopen of " << CompactionStrategyName(kStrategies[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, CompactionEquivalenceTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// ------------------------------------------------- leveled on real data

TEST(LeveledDatasetTest, RealIngestHoldsLevelInvariants) {
  const std::string dir = testing::TempDir() + "/compaction_leveled_real";
  std::filesystem::remove_all(dir);
  BufferCache cache(1024 * kPage, kPage);
  DatasetOptions options;
  options.layout = LayoutKind::kAmax;
  options.dir = dir;
  options.page_size = kPage;
  options.memtable_bytes = 8 * 1024;
  options.amax_max_records = 64;
  options.compaction.strategy = CompactionStrategy::kLeveled;
  // Components are page-granular, so the level-0 boundary is set
  // explicitly well above one flush's output.
  options.compaction.level_base_bytes = 64 * 1024;
  options.compaction.level_fanout = 4;
  options.compaction.level0_components = 3;
  auto ds = Dataset::Open(options, &cache);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  Rng rng(7);
  for (int op = 0; op < 3000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(900));
    ASSERT_TRUE(
        (*ds)->Insert(MakeRecord(key, static_cast<uint64_t>(op))).ok());
  }
  ASSERT_TRUE((*ds)->Flush().ok());

  // Quiescent leveled invariants on the real component stack: at most
  // one run per level >= 1 — which also makes per-level key ranges
  // trivially non-overlapping — and a level-0 backlog under the
  // trigger. The key-range check is still asserted directly so a
  // future multi-run-per-level policy variant inherits it.
  std::map<size_t, std::vector<std::pair<int64_t, int64_t>>> level_ranges;
  for (size_t i = 0; i < (*ds)->component_count(); ++i) {
    const Component& component = (*ds)->component(i);
    const size_t level =
        LevelOf(component.size_bytes(), options.compaction.level_base_bytes,
                options.compaction.level_fanout);
    const auto& leaves = component.reader().leaves();
    ASSERT_FALSE(leaves.empty());
    level_ranges[level].emplace_back(leaves.front().min_key,
                                     leaves.back().max_key);
  }
  for (const auto& [level, ranges] : level_ranges) {
    if (level == 0) {
      EXPECT_LT(ranges.size(),
                static_cast<size_t>(options.compaction.level0_components));
      continue;
    }
    EXPECT_EQ(ranges.size(), 1u) << "level " << level;
    for (size_t a = 0; a < ranges.size(); ++a) {
      for (size_t b = a + 1; b < ranges.size(); ++b) {
        const bool disjoint = ranges[a].second < ranges[b].first ||
                              ranges[b].second < ranges[a].first;
        EXPECT_TRUE(disjoint) << "level " << level << " overlap";
      }
    }
  }
  // The policy actually merged (this workload flushes ~dozens of times).
  EXPECT_GT((*ds)->stats().merges, 0u);
  ds->reset();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- amplification stats

TEST(AmplificationStatsTest, ExactWriteAmpOnHandComputedScenario) {
  const std::string dir = testing::TempDir() + "/compaction_amp_exact";
  std::filesystem::remove_all(dir);
  BufferCache cache(512 * kPage, kPage);
  DatasetOptions options;
  options.layout = LayoutKind::kVb;
  options.dir = dir;
  options.page_size = kPage;
  options.memtable_bytes = 1u << 20;
  options.auto_merge = false;  // N flushes + exactly one full merge
  auto ds = Dataset::Open(options, &cache);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  int64_t key = 0;
  for (int flush = 0; flush < 3; ++flush) {
    for (int i = 0; i < 50; ++i, ++key) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(key, 1)).ok());
    }
    ASSERT_TRUE((*ds)->Flush().ok());
  }
  DatasetStats stats = (*ds)->stats();
  EXPECT_EQ(stats.flushes, 3u);
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.merged_bytes_in, 0u);
  EXPECT_EQ(stats.merge_bytes_out, 0u);
  // Before any merge, every byte on disk was written exactly once.
  uint64_t component_bytes = 0;
  for (size_t i = 0; i < (*ds)->component_count(); ++i) {
    component_bytes += (*ds)->component(i).size_bytes();
  }
  EXPECT_EQ((*ds)->component_count(), 3u);
  EXPECT_EQ(stats.flush_bytes_out, component_bytes);
  EXPECT_EQ(stats.on_disk_bytes, component_bytes);
  EXPECT_DOUBLE_EQ(stats.write_amplification(), 1.0);
  EXPECT_DOUBLE_EQ(stats.space_amplification(), 0.0);  // no baseline yet
  const uint64_t flush_bytes = stats.flush_bytes_out;

  ASSERT_TRUE((*ds)->MergeAll().ok());
  stats = (*ds)->stats();
  EXPECT_EQ(stats.merges, 1u);
  ASSERT_EQ((*ds)->component_count(), 1u);
  const uint64_t merged_size = (*ds)->component(0).size_bytes();
  // Hand-computable bookkeeping: the merge read the three flushed
  // components and wrote the single surviving one.
  EXPECT_EQ(stats.merged_bytes_in, flush_bytes);
  EXPECT_EQ(stats.merge_bytes_out, merged_size);
  EXPECT_EQ(stats.last_full_merge_bytes, merged_size);
  EXPECT_EQ(stats.on_disk_bytes, merged_size);
  EXPECT_EQ(stats.flush_bytes_out, flush_bytes);
  EXPECT_DOUBLE_EQ(
      stats.write_amplification(),
      static_cast<double>(flush_bytes + merged_size) /
          static_cast<double>(flush_bytes));
  // Fully merged: on-disk == live, space amplification exactly 1.
  EXPECT_DOUBLE_EQ(stats.space_amplification(), 1.0);
  ds->reset();
  std::filesystem::remove_all(dir);
}

TEST(AmplificationStatsTest, CountersMonotoneUnderRandomSchedule) {
  const std::string dir = testing::TempDir() + "/compaction_amp_monotone";
  std::filesystem::remove_all(dir);
  BufferCache cache(512 * kPage, kPage);
  DatasetOptions options;
  options.layout = LayoutKind::kAmax;
  options.dir = dir;
  options.page_size = kPage;
  options.memtable_bytes = 4 * 1024;
  options.amax_max_records = 64;
  options.compaction.strategy = CompactionStrategy::kLeveled;
  options.compaction.level_base_bytes = 48 * 1024;
  auto ds = Dataset::Open(options, &cache);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  Rng rng(1234);
  DatasetStats previous = (*ds)->stats();
  for (int round = 0; round < 40; ++round) {
    for (int op = 0; op < 50; ++op) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(400));
      if (rng.Bernoulli(0.2)) {
        ASSERT_TRUE((*ds)->Delete(key).ok());
      } else {
        ASSERT_TRUE(
            (*ds)->Insert(MakeRecord(key, static_cast<uint64_t>(round))).ok());
      }
    }
    if (rng.Bernoulli(0.25)) {
      ASSERT_TRUE((*ds)->Flush().ok());
    }
    const DatasetStats stats = (*ds)->stats();
    // Byte *counters* never move backwards, whatever the merge cadence.
    EXPECT_GE(stats.flush_bytes_out, previous.flush_bytes_out);
    EXPECT_GE(stats.merge_bytes_out, previous.merge_bytes_out);
    EXPECT_GE(stats.merged_bytes_in, previous.merged_bytes_in);
    EXPECT_GE(stats.flushes, previous.flushes);
    EXPECT_GE(stats.merges, previous.merges);
    if (stats.flush_bytes_out > 0) {
      EXPECT_GE(stats.write_amplification(), 1.0);
    }
    previous = stats;
  }
  ds->reset();
  std::filesystem::remove_all(dir);
}

TEST(AmplificationStatsTest, SurvivesStoreHealthRollup) {
  const std::string dir = testing::TempDir() + "/compaction_amp_health";
  std::filesystem::remove_all(dir);
  StoreOptions store_options;
  store_options.dir = dir;
  store_options.page_size = kPage;
  store_options.cache_bytes = 512 * kPage;
  store_options.compaction.strategy = CompactionStrategy::kLazyLeveling;
  auto store = Store::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  DatasetOptions options;
  options.layout = LayoutKind::kAmax;
  options.memtable_bytes = 4 * 1024;
  options.amax_max_records = 64;
  auto ds = (*store)->OpenDataset("docs", options);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  // The store-level policy reaches the dataset.
  EXPECT_EQ((*ds)->options().compaction.strategy,
            CompactionStrategy::kLazyLeveling);
  for (int64_t key = 0; key < 600; ++key) {
    ASSERT_TRUE((*ds)->Insert(MakeRecord(key, 1)).ok());
  }
  ASSERT_TRUE((*ds)->Flush().ok());
  ASSERT_TRUE((*ds)->MergeAll().ok());

  const DatasetStats stats = (*ds)->stats();
  const std::vector<DatasetHealth> health = (*store)->Health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].name, "docs");
  EXPECT_EQ(health[0].flush_bytes_out, stats.flush_bytes_out);
  EXPECT_EQ(health[0].merge_bytes_in, stats.merged_bytes_in);
  EXPECT_EQ(health[0].merge_bytes_out, stats.merge_bytes_out);
  EXPECT_GT(health[0].flush_bytes_out, 0u);
  EXPECT_GT(health[0].merge_bytes_out, 0u);
  EXPECT_DOUBLE_EQ(health[0].write_amplification,
                   stats.write_amplification());
  EXPECT_DOUBLE_EQ(health[0].space_amplification, 1.0);
  ASSERT_TRUE((*store)->Close().ok());
  store->reset();
  std::filesystem::remove_all(dir);
}

// -------------------------------------- leveled back-pressure regression

// The writer-stall threshold now derives from the active policy. Extends
// the tiered re-arm regression (wal_test.cc): under the *leveled* policy
// with a background flush fault, back-pressure must surface the error to
// a writer (never wedge on the policy-derived component bound) and fully
// recover once the fault clears.
TEST(DatasetBackpressureTest, LeveledPolicyRecoversAfterFlushFault) {
  const std::string dir =
      testing::TempDir() + "/compaction_backpressure_leveled";
  std::filesystem::remove_all(dir);
  FaultInjectionFs fault_fs;
  StoreOptions store_options;
  store_options.dir = dir;
  store_options.page_size = kPage;
  store_options.cache_bytes = 512 * kPage;
  store_options.background_threads = 1;
  store_options.fs = &fault_fs;
  store_options.io_retry.max_retries = 1;
  store_options.io_retry.initial_backoff_micros = 100;
  store_options.compaction.strategy = CompactionStrategy::kLeveled;
  store_options.compaction.level0_components = 2;
  auto store = Store::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  DatasetOptions options;
  options.layout = LayoutKind::kAmax;
  options.memtable_bytes = 2 * 1024;  // a handful of records per memtable
  options.max_immutable_memtables = 1;
  options.amax_max_records = 200;
  auto ds = (*store)->OpenDataset("docs", options);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ((*ds)->options().compaction.strategy,
            CompactionStrategy::kLeveled);

  {
    FaultRule rule;
    rule.path_substring = ".cmp.tmp";
    rule.op = FaultOp::kCreate;
    fault_fs.AddRule(rule);
  }

  Value record = Value::MakeObject();
  std::vector<int64_t> acked;
  Status seen_error;
  int64_t key = 0;
  for (int i = 0; i < 5000 && seen_error.ok(); ++i, ++key) {
    record.Set("id", Value::Int(key));
    record.Set("name", Value::String("k" + std::to_string(key)));
    Status st = (*ds)->Insert(record);
    if (st.ok()) {
      acked.push_back(key);
    } else {
      seen_error = st;  // must surface here — not hang in the stall
    }
  }
  ASSERT_FALSE(seen_error.ok()) << "flush fault never surfaced to a writer";

  fault_fs.ClearRules();
  EXPECT_GT(fault_fs.injected_errors(), 0u);
  int post_failures = 0;
  for (int i = 0; i < 400; ++i, ++key) {
    record.Set("id", Value::Int(key));
    record.Set("name", Value::String("k" + std::to_string(key)));
    Status st = (*ds)->Insert(record);
    if (st.ok()) {
      acked.push_back(key);
    } else {
      ++post_failures;  // at most the already-recorded error drains here
    }
  }
  EXPECT_LE(post_failures, 2);
  ASSERT_TRUE((*ds)->Flush().ok());
  ASSERT_TRUE((*ds)->WaitForBackgroundWork().ok());

  {
    auto snapshot = (*ds)->GetSnapshot();
    auto cursor = snapshot->Scan(Projection::All());
    ASSERT_TRUE(cursor.ok());
    size_t scanned = 0;
    while (true) {
      auto ok = (*cursor)->Next();
      ASSERT_TRUE(ok.ok());
      if (!*ok) break;
      ++scanned;
    }
    EXPECT_EQ(scanned, acked.size());
  }
  // The leveled policy kept merging through the run (its write-amp
  // bookkeeping confirms real merges happened under back-pressure).
  EXPECT_GT((*ds)->stats().merges, 0u);
  ASSERT_TRUE((*store)->Close().ok());
  store->reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lsmcol
