// Direct tests for the two row-major codecs (Open and VB): round-trips,
// path extraction (offset navigation vs linear walk), malformed input,
// and the size relationship the paper reports (VB ≈ 17% smaller on flat
// data, §6.2).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/datagen/datagen.h"
#include "src/json/parser.h"
#include "src/layouts/row_codec.h"

namespace lsmcol {
namespace {

class RowCodecTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  const RowCodec& codec() { return GetRowCodec(GetParam()); }
};

TEST_P(RowCodecTest, RoundTripsScalarsAndContainers) {
  for (const char* json : {
           R"({"a": 1})",
           R"({"a": -9223372036854775808, "b": 1.5, "c": "text",
               "d": true, "e": false, "f": null})",
           R"({"nested": {"deep": {"deeper": [1, [2, 3], {"x": "y"}]}}})",
           R"({"empty_obj": {}, "empty_arr": []})",
           R"({"unicode": "héllo wörld", "escape": "tab\tnewline\n"})",
       }) {
    auto v = ParseJson(json);
    ASSERT_TRUE(v.ok());
    Buffer encoded;
    codec().Encode(*v, &encoded);
    Value decoded;
    ASSERT_TRUE(codec().Decode(encoded.slice(), &decoded).ok()) << json;
    EXPECT_TRUE(v->Equals(decoded)) << json << " -> " << ToJson(decoded);
  }
}

TEST_P(RowCodecTest, ExtractPathWithoutFullDecode) {
  auto v = ParseJson(
      R"({"id": 7, "user": {"name": "ann", "stats": {"followers": 42}},
          "tags": ["a", "b"]})");
  Buffer encoded;
  codec().Encode(*v, &encoded);
  Value out;
  ASSERT_TRUE(codec().ExtractPath(encoded.slice(), {"id"}, &out).ok());
  EXPECT_EQ(out.int_value(), 7);
  ASSERT_TRUE(codec()
                  .ExtractPath(encoded.slice(),
                               {"user", "stats", "followers"}, &out)
                  .ok());
  EXPECT_EQ(out.int_value(), 42);
  ASSERT_TRUE(codec().ExtractPath(encoded.slice(), {"missing"}, &out).ok());
  EXPECT_TRUE(out.is_missing());
  ASSERT_TRUE(
      codec().ExtractPath(encoded.slice(), {"id", "not_object"}, &out).ok());
  EXPECT_TRUE(out.is_missing());
}

TEST_P(RowCodecTest, ExtractPathMapsOverArrays) {
  auto v = ParseJson(
      R"({"addr": [{"spec": {"c": "US"}}, {"spec": {"c": "DE"}}]})");
  Buffer encoded;
  codec().Encode(*v, &encoded);
  Value out;
  ASSERT_TRUE(
      codec().ExtractPath(encoded.slice(), {"addr", "spec", "c"}, &out).ok());
  ASSERT_TRUE(out.is_array());
  ASSERT_EQ(out.array().size(), 2u);
  EXPECT_EQ(out.array()[1].string_value(), "DE");
}

TEST_P(RowCodecTest, TruncatedInputFailsCleanly) {
  auto v = ParseJson(R"({"a": "some string value", "b": [1,2,3]})");
  Buffer encoded;
  codec().Encode(*v, &encoded);
  for (size_t cut : {size_t{1}, encoded.size() / 2, encoded.size() - 1}) {
    Value out;
    Status st = codec().Decode(Slice(encoded.data(), cut), &out);
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
  }
}

TEST_P(RowCodecTest, RandomizedDocumentsRoundTrip) {
  Rng rng(31);
  for (int i = 0; i < 150; ++i) {
    Value v = MakeRecord(
        static_cast<Workload>(i % 5), i, &rng);
    Buffer encoded;
    codec().Encode(v, &encoded);
    Value decoded;
    ASSERT_TRUE(codec().Decode(encoded.slice(), &decoded).ok());
    // Row codecs preserve nulls; generators don't emit them, so Equals
    // applies directly.
    EXPECT_TRUE(v.Equals(decoded)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, RowCodecTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

TEST(RowCodecSizeTest, VbIsSmallerThanOpenOnFlatData) {
  Rng rng(3);
  size_t open_total = 0, vb_total = 0;
  for (int i = 0; i < 500; ++i) {
    Value v = MakeRecord(Workload::kCell, i, &rng);
    Buffer open, vb;
    GetRowCodec(LayoutKind::kOpen).Encode(v, &open);
    GetRowCodec(LayoutKind::kVb).Encode(v, &vb);
    open_total += open.size();
    vb_total += vb.size();
  }
  // §6.2: VB ~17% smaller than Open on the flat cell data.
  EXPECT_LT(vb_total, open_total);
  EXPECT_GT(static_cast<double>(open_total) / vb_total, 1.1);
}

TEST(RowCodecSizeTest, VbNameTableDeduplicatesRepeatedKeys) {
  // An array of 100 identical-shaped objects: Open repeats each name 100
  // times, VB stores it once.
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(1));
  Value arr = Value::MakeArray();
  for (int i = 0; i < 100; ++i) {
    Value e = Value::MakeObject();
    e.Set("reading_value_field_name", Value::Int(i));
    arr.Push(std::move(e));
  }
  v.Set("rs", std::move(arr));
  Buffer open, vb;
  GetRowCodec(LayoutKind::kOpen).Encode(v, &open);
  GetRowCodec(LayoutKind::kVb).Encode(v, &vb);
  EXPECT_GT(open.size(), 3 * vb.size());
}

}  // namespace
}  // namespace lsmcol
