// Tests for the storage layer: PageFile, BufferCache (LRU, pinning, I/O
// stats, confiscation), ComponentWriter/Reader (leaves, index, metadata,
// validity, range reads).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/rng.h"
#include "src/storage/buffer_cache.h"
#include "src/storage/component_file.h"
#include "src/storage/fault_injection_fs.h"
#include "src/storage/file.h"
#include "src/storage/manifest.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 4096;  // small pages keep tests fast

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/lsmcol_" + name + "_" +
         std::to_string(::getpid());
}

TEST(PageFileTest, WriteReadRoundTrip) {
  std::string path = TempPath("pf1");
  auto file = PageFile::Create(path, kPage);
  ASSERT_TRUE(file.ok());
  std::string a(100, 'a');
  std::string b(kPage, 'b');
  ASSERT_TRUE((*file)->WritePage(0, Slice(a)).ok());
  ASSERT_TRUE((*file)->WritePage(1, Slice(b)).ok());
  EXPECT_EQ((*file)->page_count(), 2u);
  Buffer out;
  ASSERT_TRUE((*file)->ReadPage(0, &out).ok());
  EXPECT_EQ(out.size(), kPage);
  EXPECT_EQ(std::string(out.data(), 100), a);
  EXPECT_EQ(out.data()[100], '\0');  // zero padding
  ASSERT_TRUE((*file)->ReadPage(1, &out).ok());
  EXPECT_EQ(std::string(out.data(), kPage), b);
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(PageFileTest, OversizePayloadRejected) {
  std::string path = TempPath("pf2");
  auto file = PageFile::Create(path, kPage);
  ASSERT_TRUE(file.ok());
  std::string big(kPage + 1, 'x');
  EXPECT_FALSE((*file)->WritePage(0, Slice(big)).ok());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(PageFileTest, ReadPastEndFails) {
  std::string path = TempPath("pf3");
  auto file = PageFile::Create(path, kPage);
  ASSERT_TRUE(file.ok());
  Buffer out;
  EXPECT_FALSE((*file)->ReadPage(0, &out).ok());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(PageFileTest, OpenNonexistentFails) {
  EXPECT_FALSE(PageFile::Open(TempPath("does_not_exist"), kPage).ok());
}

TEST(PageFileTest, ChecksummedRoundTripAndPhysicalSize) {
  std::string path = TempPath("pf_ck1");
  auto file = PageFile::Create(path, kPage, /*checksummed=*/true);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->page_size(), kPage);  // payload budget is unchanged
  EXPECT_EQ((*file)->physical_page_size(), kPage + kPageTrailerBytes);
  ASSERT_TRUE((*file)->WritePage(0, Slice("hello")).ok());
  ASSERT_TRUE((*file)->WritePage(1, Slice(std::string(kPage, 'z'))).ok());
  Buffer out;
  ASSERT_TRUE((*file)->ReadPage(0, &out).ok());
  EXPECT_EQ(out.size(), kPage);  // trailer stripped
  EXPECT_EQ(std::string(out.data(), 5), "hello");
  ASSERT_TRUE((*file)->ReadPage(1, &out).ok());
  EXPECT_EQ(std::string(out.data(), kPage), std::string(kPage, 'z'));
  // Reopen sees the trailered geometry.
  auto reopened = PageFile::Open(path, kPage, /*checksummed=*/true);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 2u);
  Buffer again;
  ASSERT_TRUE((*reopened)->ReadPage(0, &again).ok());
  EXPECT_EQ(std::string(again.data(), 5), "hello");
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(PageFileTest, BitFlipDetectedNamingFileAndPage) {
  std::string path = TempPath("pf_ck2");
  {
    auto file = PageFile::Create(path, kPage, /*checksummed=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WritePage(0, Slice("page zero")).ok());
    ASSERT_TRUE((*file)->WritePage(1, Slice("page one")).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  {
    // Flip one bit in page 1's payload, bypassing the FileSystem layer.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(kPage + kPageTrailerBytes + 3));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(kPage + kPageTrailerBytes + 3));
    f.put(static_cast<char>(c ^ 0x10));
  }
  auto file = PageFile::Open(path, kPage, /*checksummed=*/true);
  ASSERT_TRUE(file.ok());
  Buffer out;
  ASSERT_TRUE((*file)->ReadPage(0, &out).ok());  // untouched page still reads
  Status st = (*file)->ReadPage(1, &out);
  ASSERT_TRUE(st.IsChecksumMismatch()) << st.ToString();
  EXPECT_NE(st.ToString().find(path), std::string::npos) << st.ToString();
  EXPECT_NE(st.ToString().find("page 1"), std::string::npos) << st.ToString();
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(PageFileTest, MisdirectedPageDetected) {
  // The trailer covers the page number, so a page written to the wrong
  // offset (misdirected I/O) fails its checksum even though its bytes are
  // internally consistent.
  std::string path = TempPath("pf_ck3");
  {
    auto file = PageFile::Create(path, kPage, /*checksummed=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WritePage(0, Slice("A")).ok());
    ASSERT_TRUE((*file)->WritePage(1, Slice("B")).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  {
    // Swap the two physical pages wholesale.
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    const size_t physical = kPage + kPageTrailerBytes;
    std::string swapped = all.substr(physical, physical) +
                          all.substr(0, physical);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << swapped;
  }
  auto file = PageFile::Open(path, kPage, /*checksummed=*/true);
  ASSERT_TRUE(file.ok());
  Buffer out;
  EXPECT_TRUE((*file)->ReadPage(0, &out).IsChecksumMismatch());
  EXPECT_TRUE((*file)->ReadPage(1, &out).IsChecksumMismatch());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(PageFileTest, LegacyFormatStillReadable) {
  std::string path = TempPath("pf_legacy");
  {
    auto file = PageFile::Create(path, kPage, /*checksummed=*/false);
    ASSERT_TRUE(file.ok());
    EXPECT_EQ((*file)->physical_page_size(), kPage);  // no trailer
    ASSERT_TRUE((*file)->WritePage(0, Slice("legacy")).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  auto file = PageFile::Open(path, kPage, /*checksummed=*/false);
  ASSERT_TRUE(file.ok());
  Buffer out;
  ASSERT_TRUE((*file)->ReadPage(0, &out).ok());
  EXPECT_EQ(std::string(out.data(), 6), "legacy");
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(FaultInjectionFsTest, FailAfterNAndMaxFailures) {
  FaultInjectionFs fs;
  std::string path = TempPath("fifs1");
  FaultRule rule;
  rule.path_substring = "fifs1";
  rule.op = FaultOp::kWrite;
  rule.fail_after = 2;    // first two writes succeed
  rule.max_failures = 1;  // then exactly one failure
  fs.AddRule(rule);
  auto file = fs.Create(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append(Slice("a")).ok());
  EXPECT_TRUE((*file)->Append(Slice("b")).ok());
  Status st = (*file)->Append(Slice("c"));
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE((*file)->Append(Slice("d")).ok());  // budget exhausted
  EXPECT_EQ(fs.injected_errors(), 1u);
  EXPECT_TRUE(fs.RemoveFile(path).ok());
}

TEST(FaultInjectionFsTest, ByteQuotaInjectsEnospc) {
  FaultInjectionFs fs;
  std::string path = TempPath("fifs2");
  fs.SetByteQuota(8);
  auto file = fs.Create(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append(Slice("12345678")).ok());
  Status st = (*file)->Append(Slice("x"));
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.ToString().find("o space"), std::string::npos)
      << st.ToString();  // strerror(ENOSPC)
  fs.ClearByteQuota();
  EXPECT_TRUE((*file)->Append(Slice("x")).ok());
  // The failed write was all-or-nothing: 8 quota bytes + 1 after clearing.
  {
    auto size = (*file)->Size();
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, 9u);
  }
  EXPECT_TRUE(fs.RemoveFile(path).ok());
}

TEST(FaultInjectionFsTest, DropUnsyncedWrites) {
  FaultInjectionFs fs;
  fs.SetTrackUnsynced(true);
  const std::string dir = TempPath("fifs3");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(fs.CreateDirs(dir).ok());
  const std::string synced_path = dir + "/synced";
  const std::string torn_path = dir + "/torn";
  const std::string never_path = dir + "/never";
  {
    auto f = fs.Create(synced_path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(Slice("durable")).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Append(Slice(" lost-tail")).ok());  // never synced
  }
  {
    auto f = fs.Create(torn_path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(Slice("gone")).ok());  // never synced
  }
  {
    auto f = fs.Create(never_path);
    ASSERT_TRUE(f.ok());
  }
  fs.DropUnsyncedWrites();
  {
    auto f = fs.Open(synced_path, /*writable=*/false);
    ASSERT_TRUE(f.ok());
    auto size = (*f)->Size();
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, 7u);  // "durable", tail rewound
  }
  EXPECT_FALSE(fs.Exists(torn_path));  // created+written but never synced
  EXPECT_FALSE(fs.Exists(never_path));
  std::filesystem::remove_all(dir);
}

TEST(BufferCacheTest, HitAvoidsSecondRead) {
  std::string path = TempPath("bc1");
  auto file = PageFile::Create(path, kPage);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->WritePage(0, Slice("hello")).ok());
  BufferCache cache(16 * kPage, kPage);
  {
    auto h = cache.Fetch(**file, 0);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(std::string(h->data().data(), 5), "hello");
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  {
    auto h = cache.Fetch(**file, 0);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().pages_read, 1u);
  EXPECT_EQ(cache.stats().bytes_read, kPage);
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(BufferCacheTest, LruEvictsUnpinned) {
  std::string path = TempPath("bc2");
  auto file = PageFile::Create(path, kPage);
  ASSERT_TRUE(file.ok());
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*file)->WritePage(i, Slice("x")).ok());
  }
  BufferCache cache(4 * kPage, kPage);  // room for 4 pages
  for (uint64_t i = 0; i < 8; ++i) {
    auto h = cache.Fetch(**file, i);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(cache.stats().evictions, 4u);
  EXPECT_LE(cache.cached_bytes(), 4 * kPage);
  // Page 7 is hot; page 0 was evicted.
  cache.ResetStats();
  { auto h = cache.Fetch(**file, 7); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(cache.stats().hits, 1u);
  { auto h = cache.Fetch(**file, 0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(BufferCacheTest, PinnedPagesSurviveCapacityPressure) {
  std::string path = TempPath("bc3");
  auto file = PageFile::Create(path, kPage);
  ASSERT_TRUE(file.ok());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE((*file)->WritePage(i, Slice("y")).ok());
  }
  BufferCache cache(2 * kPage, kPage);
  auto pinned = cache.Fetch(**file, 0);
  ASSERT_TRUE(pinned.ok());
  for (uint64_t i = 1; i < 4; ++i) {
    auto h = cache.Fetch(**file, i);
    ASSERT_TRUE(h.ok());
  }
  // Page 0 stays fetchable as a hit while pinned.
  cache.ResetStats();
  { auto h = cache.Fetch(**file, 0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(BufferCacheTest, ConfiscationCountsAgainstBudget) {
  std::string path = TempPath("bc4");
  auto file = PageFile::Create(path, kPage);
  ASSERT_TRUE(file.ok());
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE((*file)->WritePage(i, Slice("z")).ok());
  }
  BufferCache cache(4 * kPage, kPage);
  for (uint64_t i = 0; i < 3; ++i) {
    auto h = cache.Fetch(**file, i);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.Confiscate(3 * kPage);  // squeezes the cache to 1 page
  EXPECT_EQ(cache.stats().confiscations, 1u);
  EXPECT_GE(cache.stats().evictions, 2u);
  cache.ReturnConfiscated(3 * kPage);
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(BufferCacheTest, InvalidateDropsFilePages) {
  std::string path = TempPath("bc5");
  auto file = PageFile::Create(path, kPage);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->WritePage(0, Slice("q")).ok());
  BufferCache cache(8 * kPage, kPage);
  { auto h = cache.Fetch(**file, 0); ASSERT_TRUE(h.ok()); }
  cache.Invalidate(**file);
  EXPECT_EQ(cache.cached_bytes(), 0u);
  cache.ResetStats();
  { auto h = cache.Fetch(**file, 0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(BufferCacheTest, EvictionsInterleaveWithInvalidateAcrossFiles) {
  // Regression for the single-map frame index: evictions must drop the
  // frame from the per-file list too, so a later Invalidate of the same
  // file never touches a freed (or re-fetched) frame.
  std::string path_a = TempPath("bc6a"), path_b = TempPath("bc6b");
  auto file_a = PageFile::Create(path_a, kPage);
  auto file_b = PageFile::Create(path_b, kPage);
  ASSERT_TRUE(file_a.ok());
  ASSERT_TRUE(file_b.ok());
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE((*file_a)->WritePage(i, Slice("a")).ok());
    ASSERT_TRUE((*file_b)->WritePage(i, Slice("b")).ok());
  }
  BufferCache cache(4 * kPage, kPage);  // forces steady eviction
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 6; ++i) {
      { auto h = cache.Fetch(**file_a, i); ASSERT_TRUE(h.ok()); }
      { auto h = cache.Fetch(**file_b, i); ASSERT_TRUE(h.ok()); }
    }
    cache.Invalidate(**file_a);  // must only drop file A's frames
    for (uint64_t i = 0; i < 2; ++i) {
      auto h = cache.Fetch(**file_b, i);
      ASSERT_TRUE(h.ok());
      EXPECT_EQ(h->data().data()[0], 'b');
    }
    cache.Invalidate(**file_b);
    EXPECT_EQ(cache.cached_bytes(), 0u);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // Same page number in different files must stay distinct identities.
  { auto h = cache.Fetch(**file_a, 3); ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data().data()[0], 'a'); }
  { auto h = cache.Fetch(**file_b, 3); ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data().data()[0], 'b'); }
  EXPECT_TRUE(RemoveFileIfExists(path_a).ok());
  EXPECT_TRUE(RemoveFileIfExists(path_b).ok());
}

class ComponentFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("comp");
    cache_ = std::make_unique<BufferCache>(64 * kPage, kPage);
  }
  void TearDown() override { RemoveFileIfExists(path_); }

  std::string path_;
  std::unique_ptr<BufferCache> cache_;
};

TEST_F(ComponentFileTest, RoundTripLeavesIndexAndMetadata) {
  auto writer = ComponentWriter::Create(path_, cache_.get(), kPage);
  ASSERT_TRUE(writer.ok());
  std::string leaf1(kPage / 2, 'A');           // sub-page leaf
  std::string leaf2(kPage * 3 + 100, 'B');     // multi-page leaf
  ASSERT_TRUE((*writer)->AppendLeaf(Slice(leaf1), 0, 9, 10).ok());
  ASSERT_TRUE((*writer)->AppendLeaf(Slice(leaf2), 10, 25, 16).ok());
  ASSERT_TRUE((*writer)->Finish(Slice("META")).ok());

  auto reader = ComponentReader::Open(path_, cache_.get(), kPage);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ((*reader)->leaves().size(), 2u);
  EXPECT_EQ((*reader)->leaves()[0].min_key, 0);
  EXPECT_EQ((*reader)->leaves()[0].max_key, 9);
  EXPECT_EQ((*reader)->leaves()[0].record_count, 10u);
  EXPECT_EQ((*reader)->leaves()[1].page_count, 4u);
  EXPECT_EQ((*reader)->metadata().ToString(), "META");

  Buffer out;
  ASSERT_TRUE((*reader)->ReadLeaf(0, &out).ok());
  EXPECT_EQ(out.slice().ToString(), leaf1);
  ASSERT_TRUE((*reader)->ReadLeaf(1, &out).ok());
  EXPECT_EQ(out.slice().ToString(), leaf2);
}

TEST_F(ComponentFileTest, RangeReadTouchesOnlyNeededPages) {
  auto writer = ComponentWriter::Create(path_, cache_.get(), kPage);
  ASSERT_TRUE(writer.ok());
  std::string payload;
  for (size_t i = 0; i < kPage * 6; ++i) {
    payload.push_back(static_cast<char>('a' + (i / kPage)));
  }
  ASSERT_TRUE((*writer)->AppendLeaf(Slice(payload), 0, 99, 100).ok());
  ASSERT_TRUE((*writer)->Finish(Slice("")).ok());

  auto reader = ComponentReader::Open(path_, cache_.get(), kPage);
  ASSERT_TRUE(reader.ok());
  cache_->ResetStats();
  Buffer out;
  // Bytes entirely inside page 3 of the leaf.
  ASSERT_TRUE((*reader)->ReadLeafRange(0, kPage * 3 + 10, 100, &out).ok());
  EXPECT_EQ(out.slice().ToString(), std::string(100, 'd'));
  EXPECT_EQ(cache_->stats().pages_read, 1u);
  // Range spanning pages 1..2.
  ASSERT_TRUE(
      (*reader)->ReadLeafRange(0, kPage - 50, 100, &out).ok());
  EXPECT_EQ(out.slice().ToString(),
            std::string(50, 'a') + std::string(50, 'b'));
  EXPECT_EQ(cache_->stats().pages_read, 3u);
  // Out-of-bounds rejected.
  EXPECT_FALSE((*reader)->ReadLeafRange(0, kPage * 6 - 10, 20, &out).ok());
}

TEST_F(ComponentFileTest, LowerBoundLeafBinarySearch) {
  auto writer = ComponentWriter::Create(path_, cache_.get(), kPage);
  ASSERT_TRUE(writer.ok());
  // Leaves: [0,9], [10,19], [30,39] (gap 20..29).
  for (int i : {0, 10, 30}) {
    ASSERT_TRUE((*writer)->AppendLeaf(Slice("leaf"), i, i + 9, 1).ok());
  }
  ASSERT_TRUE((*writer)->Finish(Slice("")).ok());
  auto reader = ComponentReader::Open(path_, cache_.get(), kPage);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->LowerBoundLeaf(-5), 0u);
  EXPECT_EQ((*reader)->LowerBoundLeaf(0), 0u);
  EXPECT_EQ((*reader)->LowerBoundLeaf(9), 0u);
  EXPECT_EQ((*reader)->LowerBoundLeaf(10), 1u);
  EXPECT_EQ((*reader)->LowerBoundLeaf(25), 2u);  // in the gap
  EXPECT_EQ((*reader)->LowerBoundLeaf(39), 2u);
  EXPECT_EQ((*reader)->LowerBoundLeaf(40), 3u);  // past all leaves
}

TEST_F(ComponentFileTest, EmptyComponent) {
  auto writer = ComponentWriter::Create(path_, cache_.get(), kPage);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Finish(Slice("empty")).ok());
  auto reader = ComponentReader::Open(path_, cache_.get(), kPage);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->leaves().size(), 0u);
  EXPECT_EQ((*reader)->metadata().ToString(), "empty");
}

TEST_F(ComponentFileTest, CorruptFooterRejected) {
  {
    auto file = PageFile::Create(path_, kPage);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WritePage(0, Slice("garbage")).ok());
  }
  EXPECT_FALSE(ComponentReader::Open(path_, cache_.get(), kPage).ok());
}

TEST_F(ComponentFileTest, DestroyRemovesFileAndCacheEntries) {
  auto writer = ComponentWriter::Create(path_, cache_.get(), kPage);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendLeaf(Slice("data"), 0, 0, 1).ok());
  ASSERT_TRUE((*writer)->Finish(Slice("m")).ok());
  auto reader = ComponentReader::Open(path_, cache_.get(), kPage);
  ASSERT_TRUE(reader.ok());
  Buffer out;
  ASSERT_TRUE((*reader)->ReadLeaf(0, &out).ok());
  ASSERT_TRUE((*reader)->Destroy().ok());
  EXPECT_FALSE(PageFile::Open(path_, kPage).ok());
}

TEST_F(ComponentFileTest, ManyLeavesStressIndex) {
  auto writer = ComponentWriter::Create(path_, cache_.get(), kPage);
  ASSERT_TRUE(writer.ok());
  Rng rng(5);
  int64_t key = 0;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (int i = 0; i < 500; ++i) {
    int64_t lo = key;
    key += static_cast<int64_t>(rng.Uniform(100)) + 1;
    int64_t hi = key - 1;
    ranges.emplace_back(lo, hi);
    std::string payload = "leaf" + std::to_string(i);
    ASSERT_TRUE((*writer)->AppendLeaf(Slice(payload), lo, hi,
                                      static_cast<uint32_t>(i + 1)).ok());
  }
  ASSERT_TRUE((*writer)->Finish(Slice("meta")).ok());
  auto reader = ComponentReader::Open(path_, cache_.get(), kPage);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->leaves().size(), 500u);
  for (int trial = 0; trial < 200; ++trial) {
    int64_t probe = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(key)));
    size_t idx = (*reader)->LowerBoundLeaf(probe);
    ASSERT_LT(idx, 500u);
    EXPECT_LE(probe, ranges[idx].second);
    if (idx > 0) {
      EXPECT_GT(probe, ranges[idx - 1].second);
    }
  }
  Buffer out;
  ASSERT_TRUE((*reader)->ReadLeaf(123, &out).ok());
  EXPECT_EQ(out.slice().ToString(), "leaf123");
}

TEST(ManifestTest, WalFloorRoundTrips) {
  const std::string dir = TempPath("manifest_floor");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Manifest m;
  m.sequence = 7;
  m.dataset_name = "docs";
  m.layout = 2;
  m.pk_field = "id";
  m.page_size = kPage;
  m.next_component_id = 3;
  m.wal_floor = 42;
  m.components.push_back({1, "docs_1.cmp"});
  const std::string path = ManifestPath(dir, "docs");
  ASSERT_TRUE(WriteManifest(path, m).ok());
  auto back = ReadManifest(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->wal_floor, 42u);
  EXPECT_EQ(back->sequence, 7u);
  EXPECT_EQ(back->next_component_id, 3u);
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, FailedRenameDoesNotLeakTempFile) {
  // Regression: the atomic-write path used to leave `<path>.tmp` behind
  // whenever a step after the open failed. Inject a failure into the
  // final rename and check the temp file is cleaned up.
  const std::string dir = TempPath("manifest_leak");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = ManifestPath(dir, "docs");
  FaultInjectionFs fault_fs;
  FaultRule rule;
  rule.path_substring = ".MANIFEST";
  rule.op = FaultOp::kRename;
  fault_fs.AddRule(rule);
  Manifest m;
  m.dataset_name = "docs";
  m.pk_field = "id";
  m.page_size = kPage;
  Status st = WriteManifest(path, m, &fault_fs);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(fault_fs.injected_errors(), 1u);
  EXPECT_FALSE(FileExists(path + ".tmp")) << "temp file leaked on failure";
  EXPECT_FALSE(FileExists(path));
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, SweepRemovesWalSegmentsBelowFloor) {
  const std::string dir = TempPath("manifest_sweep_wal");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const char* file :
       {"docs_1.wal", "docs_2.wal", "docs_3.wal", "other_1.wal",
        "docs_x.wal"}) {
    std::ofstream(dir + "/" + file) << "x";
  }
  size_t removed = 0;
  ASSERT_TRUE(
      RemoveStaleDatasetFiles(dir, "docs", {}, /*wal_floor=*/3, &removed)
          .ok());
  // Segments 1 and 2 are below the floor; 3 may hold acked writes. Files
  // of other datasets and non-numeric suffixes are never touched.
  EXPECT_EQ(removed, 2u);
  EXPECT_FALSE(FileExists(dir + "/docs_1.wal"));
  EXPECT_FALSE(FileExists(dir + "/docs_2.wal"));
  EXPECT_TRUE(FileExists(dir + "/docs_3.wal"));
  EXPECT_TRUE(FileExists(dir + "/other_1.wal"));
  EXPECT_TRUE(FileExists(dir + "/docs_x.wal"));
  // wal_floor 0 leaves every segment alone (the manifest-less open path).
  ASSERT_TRUE(
      RemoveStaleDatasetFiles(dir, "docs", {}, /*wal_floor=*/0, &removed)
          .ok());
  EXPECT_EQ(removed, 0u);
  EXPECT_TRUE(FileExists(dir + "/docs_3.wal"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lsmcol
