// Direct tests for the leaf layouts: APAX page structure, AMAX mega-leaf
// layout (Page 0 contents, size-ordered megapages, empty-page tolerance,
// zone-filter prefixes), and row leaves.

#include <gtest/gtest.h>

#include <string>

#include "src/columnar/shredder.h"
#include "src/common/rng.h"
#include "src/json/parser.h"
#include "src/layouts/amax.h"
#include "src/layouts/apax.h"
#include "src/layouts/row_leaf.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 4096;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/layouts_" + name;
}

// Builds chunk writers over simple records: {"id", "num", "txt"}.
struct Shredded {
  Schema schema{"id"};
  std::unique_ptr<ColumnWriterSet> writers;
  std::unique_ptr<RecordShredder> shredder;

  Shredded() {
    writers = std::make_unique<ColumnWriterSet>(&schema);
    shredder = std::make_unique<RecordShredder>(&schema, writers.get());
  }

  void Add(int64_t id, int64_t num, const std::string& txt) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(id));
    v.Set("num", Value::Int(num));
    v.Set("txt", Value::String(txt));
    LSMCOL_CHECK_OK(shredder->Shred(v));
  }
};

TEST(ApaxLeafTest, HeaderAndChunksRoundTrip) {
  RemoveFileIfExists(TempPath("apax"));
  BufferCache cache(64 * kPage, kPage);
  auto writer = ComponentWriter::Create(TempPath("apax"), &cache, kPage);
  ASSERT_TRUE(writer.ok());
  Shredded data;
  for (int64_t i = 10; i < 50; ++i) data.Add(i, i * 7, "t" + std::to_string(i));
  ASSERT_TRUE(EmitApaxLeaf(data.writers.get(), writer->get(), true).ok());
  ASSERT_TRUE((*writer)->Finish(Slice("")).ok());

  auto reader = ComponentReader::Open(TempPath("apax"), &cache, kPage);
  ASSERT_TRUE(reader.ok());
  Buffer payload;
  ASSERT_TRUE((*reader)->ReadLeaf(0, &payload).ok());
  ApaxLeaf leaf;
  ASSERT_TRUE(leaf.Init(payload.slice(), true).ok());
  EXPECT_EQ(leaf.record_count(), 40u);
  EXPECT_EQ(leaf.column_count(), 3u);
  EXPECT_EQ(leaf.min_key(), 10);  // B+-tree ops read keys from the header
  EXPECT_EQ(leaf.max_key(), 49);
  // Every chunk decodes with the schema's column info.
  for (int c = 0; c < 3; ++c) {
    ColumnChunkReader chunk_reader;
    ASSERT_TRUE(
        chunk_reader.Init(leaf.chunk(c), data.schema.column(c)).ok());
    ColumnRecord rec;
    ASSERT_TRUE(chunk_reader.NextRecord(&rec).ok());
  }
  // Absent column id -> empty chunk.
  EXPECT_TRUE(leaf.chunk(7).empty());
  RemoveFileIfExists(TempPath("apax"));
}

TEST(AmaxLeafTest, PageZeroLayoutAndMegapageOrdering) {
  RemoveFileIfExists(TempPath("amax"));
  BufferCache cache(256 * kPage, kPage);
  auto writer = ComponentWriter::Create(TempPath("amax"), &cache, kPage);
  ASSERT_TRUE(writer.ok());
  Shredded data;
  Rng rng(1);
  for (int64_t i = 0; i < 400; ++i) {
    // txt is much fatter than num, so its megapage must come first.
    data.Add(i, 1000 + (i % 50), rng.Word(40, 60));
  }
  AmaxOptions options;
  options.page_size = kPage;
  options.compress = false;
  ASSERT_TRUE(EmitAmaxLeaf(data.writers.get(), writer->get(), options).ok());
  ASSERT_TRUE((*writer)->Finish(Slice("")).ok());

  auto reader = ComponentReader::Open(TempPath("amax"), &cache, kPage);
  ASSERT_TRUE(reader.ok());
  Buffer page0_bytes;
  ASSERT_TRUE((*reader)->ReadLeafRange(0, 0, kPage, &page0_bytes).ok());
  AmaxPageZero page0;
  ASSERT_TRUE(page0.Init(page0_bytes.slice()).ok());
  EXPECT_EQ(page0.record_count(), 400u);
  EXPECT_EQ(page0.column_count(), 3u);
  EXPECT_EQ(page0.min_key(), 0);
  EXPECT_EQ(page0.max_key(), 399);

  const AmaxColumnExtent& num = page0.extent(1);
  const AmaxColumnExtent& txt = page0.extent(2);
  ASSERT_GT(num.size, 0u);
  ASSERT_GT(txt.size, 0u);
  // Megapages start after Page 0; larger (txt) placed first (§4.3).
  EXPECT_GE(txt.offset, kPage);
  EXPECT_GT(txt.size, num.size);
  EXPECT_GT(num.offset, txt.offset);

  // Zone filter prefixes: num values are 1000..1049.
  EXPECT_TRUE(AmaxIntRangeOverlaps(num, 1049, 2000));
  EXPECT_TRUE(AmaxIntRangeOverlaps(num, 900, 1000));
  EXPECT_FALSE(AmaxIntRangeOverlaps(num, 0, 999));
  EXPECT_FALSE(AmaxIntRangeOverlaps(num, 1050, 9999));

  // The txt megapage decodes after stripping its full min/max prefix.
  Buffer raw;
  ASSERT_TRUE((*reader)->ReadLeafRange(0, txt.offset, txt.size, &raw).ok());
  Buffer chunk;
  std::string lo, hi;
  ASSERT_TRUE(ParseAmaxMegapage(raw.slice(), data.schema.column(2), false,
                                &chunk, &lo, &hi)
                  .ok());
  EXPECT_FALSE(lo.empty());
  EXPECT_LE(lo, hi);
  ColumnChunkReader txt_reader;
  ASSERT_TRUE(txt_reader.Init(chunk.slice(), data.schema.column(2)).ok());
  ColumnRecord rec;
  ASSERT_TRUE(txt_reader.NextRecord(&rec).ok());
  EXPECT_EQ(rec.values.size(), 1u);
  RemoveFileIfExists(TempPath("amax"));
}

class AmaxToleranceTest : public ::testing::TestWithParam<double> {};

TEST_P(AmaxToleranceTest, ExtentsNeverOverlapAndRespectTolerance) {
  const double tolerance = GetParam();
  RemoveFileIfExists(TempPath("tol"));
  BufferCache cache(256 * kPage, kPage);
  auto writer = ComponentWriter::Create(TempPath("tol"), &cache, kPage);
  ASSERT_TRUE(writer.ok());
  // Many columns of varying sizes.
  Schema schema("id");
  ColumnWriterSet writers(&schema);
  RecordShredder shredder(&schema, &writers);
  Rng rng(2);
  for (int64_t i = 0; i < 300; ++i) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(i));
    for (int f = 0; f < 6; ++f) {
      v.Set("f" + std::to_string(f),
            Value::String(rng.Word(5 * (f + 1), 8 * (f + 1))));
    }
    ASSERT_TRUE(shredder.Shred(v).ok());
  }
  AmaxOptions options;
  options.page_size = kPage;
  options.compress = false;
  options.empty_page_tolerance = tolerance;
  ASSERT_TRUE(EmitAmaxLeaf(&writers, writer->get(), options).ok());
  ASSERT_TRUE((*writer)->Finish(Slice("")).ok());

  auto reader = ComponentReader::Open(TempPath("tol"), &cache, kPage);
  ASSERT_TRUE(reader.ok());
  Buffer page0_bytes;
  ASSERT_TRUE((*reader)->ReadLeafRange(0, 0, kPage, &page0_bytes).ok());
  AmaxPageZero page0;
  ASSERT_TRUE(page0.Init(page0_bytes.slice()).ok());
  // Collect extents, check pairwise disjointness and in-bounds.
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (uint32_t c = 1; c < page0.column_count(); ++c) {
    const AmaxColumnExtent& e = page0.extent(static_cast<int>(c));
    if (e.size == 0) continue;
    EXPECT_GE(e.offset, kPage);
    EXPECT_LE(e.offset + e.size, (*reader)->leaves()[0].payload_size);
    ranges.emplace_back(e.offset, e.offset + e.size);
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first);
  }
  RemoveFileIfExists(TempPath("tol"));
}

INSTANTIATE_TEST_SUITE_P(Tolerances, AmaxToleranceTest,
                         ::testing::Values(0.0, 0.125, 0.5, 1.0));

TEST(AmaxLeafTest, Page0OverflowIsReportedNotCorrupted) {
  RemoveFileIfExists(TempPath("ovf"));
  BufferCache cache(64 * kPage, kPage);
  auto writer = ComponentWriter::Create(TempPath("ovf"), &cache, kPage);
  ASSERT_TRUE(writer.ok());
  Shredded data;
  // 4 KiB pages cannot hold ~20k PKs in Page 0.
  for (int64_t i = 0; i < 20000; ++i) {
    data.Add(i * 1000003 % 777777, i, "x");  // non-monotone keys, wide delta
  }
  AmaxOptions options;
  options.page_size = kPage;
  Status st = EmitAmaxLeaf(data.writers.get(), writer->get(), options);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  RemoveFileIfExists(TempPath("ovf"));
}

TEST(RowLeafTest, BuilderSplitsAtPageBudget) {
  RemoveFileIfExists(TempPath("rows"));
  BufferCache cache(64 * kPage, kPage);
  auto writer = ComponentWriter::Create(TempPath("rows"), &cache, kPage);
  ASSERT_TRUE(writer.ok());
  RowLeafBuilder builder(writer->get(), kPage, /*compress=*/false);
  const std::string row(600, 'r');
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(builder.Add(i, false, Slice(row)).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE((*writer)->Finish(Slice("")).ok());
  auto reader = ComponentReader::Open(TempPath("rows"), &cache, kPage);
  ASSERT_TRUE(reader.ok());
  EXPECT_GT((*reader)->leaves().size(), 4u);  // 50*600B over 4KiB pages
  uint32_t total = 0;
  int64_t expected_key = 0;
  for (size_t leaf = 0; leaf < (*reader)->leaves().size(); ++leaf) {
    Buffer payload;
    ASSERT_TRUE((*reader)->ReadLeaf(leaf, &payload).ok());
    RowLeafReader leaf_reader;
    ASSERT_TRUE(leaf_reader.Init(payload.slice(), false).ok());
    while (!leaf_reader.AtEnd()) {
      int64_t key = 0;
      bool anti = false;
      Slice r;
      ASSERT_TRUE(leaf_reader.Next(&key, &anti, &r).ok());
      EXPECT_EQ(key, expected_key++);
      EXPECT_EQ(r.size(), row.size());
      ++total;
    }
  }
  EXPECT_EQ(total, 50u);
  RemoveFileIfExists(TempPath("rows"));
}

}  // namespace
}  // namespace lsmcol
