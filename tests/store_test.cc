// Integration tests for the Store facade: durable manifests and
// Open()-time recovery across all four layouts, crash-leftover cleanup,
// option validation, and snapshot isolation under flushes and merges.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "src/common/rng.h"
#include "src/json/parser.h"
#include "src/query/engine.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;  // small pages exercise leaf machinery

class StoreTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/store_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoreOptions Options() {
    StoreOptions options;
    options.dir = dir_;
    options.page_size = kPage;
    options.cache_bytes = 512 * kPage;
    return options;
  }

  DatasetOptions DocOptions() {
    DatasetOptions options;
    options.layout = GetParam();
    options.memtable_bytes = 16 * 1024;  // many flushes, hence merges
    options.amax_max_records = 200;
    return options;
  }

  std::unique_ptr<Store> OpenStore() {
    auto store = Store::Open(Options());
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(*store);
  }

  static Value MakeRecord(int64_t id, Rng* rng) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(id));
    v.Set("name", Value::String("user_" + std::to_string(id)));
    v.Set("score", Value::Double(static_cast<double>(id) * 0.25));
    Value tags = Value::MakeArray();
    for (uint64_t t = 0; t < rng->Uniform(3); ++t) {
      tags.Push(Value::String("tag" + std::to_string(rng->Uniform(8))));
    }
    v.Set("tags", std::move(tags));
    return v;
  }

  static std::map<int64_t, std::string> ScanAll(const Snapshot& snapshot) {
    std::map<int64_t, std::string> out;
    auto cursor = snapshot.Scan(Projection::All());
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    while (true) {
      auto ok = (*cursor)->Next();
      EXPECT_TRUE(ok.ok()) << ok.status().ToString();
      if (!*ok) break;
      Value v;
      Status st = (*cursor)->Record(&v);
      EXPECT_TRUE(st.ok()) << st.ToString();
      out[(*cursor)->key()] = ToJson(v);
    }
    return out;
  }

  static std::string ResultToString(const QueryResult& result) {
    std::string out;
    for (const auto& row : result.rows) {
      for (const auto& v : row) {
        out += ToJson(v);
        out.push_back('|');
      }
      out.push_back('\n');
    }
    return out;
  }

  static QueryPlan CountByTagPlan() {
    QueryPlan plan;
    plan.unnests.push_back({Expr::Field({"tags"}), "t"});
    plan.group_keys.push_back(Expr::Var("t"));
    plan.aggregates.push_back(AggSpec::CountStar());
    plan.order_by = 0;
    plan.order_desc = false;
    return plan;
  }

  std::string dir_;
};

TEST_P(StoreTest, ReopenPreservesScanLookupAndQueries) {
  std::map<int64_t, std::string> expected_scan;
  std::string expected_query;
  size_t component_count = 0;
  uint64_t on_disk_bytes = 0;
  {
    auto store = OpenStore();
    auto ds = store->OpenDataset("docs", DocOptions());
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    Rng rng(7);
    for (int64_t i = 0; i < 600; ++i) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(i, &rng)).ok());
    }
    ASSERT_TRUE((*ds)->Flush().ok());
    ASSERT_TRUE((*ds)->MaybeMerge().ok());
    EXPECT_GT((*ds)->stats().flushes, 1u);  // memtable budget forced flushes
    expected_scan = ScanAll(*(*ds)->GetSnapshot());
    auto q = RunQuery(*(*ds)->GetSnapshot(), CountByTagPlan(), true);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    expected_query = ResultToString(*q);
    component_count = (*ds)->component_count();
    on_disk_bytes = (*ds)->OnDiskBytes();
    ASSERT_GE(component_count, 1u);
  }  // store destroyed: everything flushed must survive

  auto store = OpenStore();
  auto names = store->ListDatasets();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "docs");
  auto ds = store->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ((*ds)->component_count(), component_count);
  EXPECT_EQ((*ds)->OnDiskBytes(), on_disk_bytes);
  EXPECT_EQ(ScanAll(*(*ds)->GetSnapshot()), expected_scan);
  // Point lookups and both engines agree with the pre-restart state.
  Value record;
  ASSERT_TRUE((*ds)->Lookup(123, &record).ok());
  EXPECT_EQ(ToJson(record), expected_scan[123]);
  for (bool compiled : {false, true}) {
    auto q = RunQuery(*(*ds)->GetSnapshot(), CountByTagPlan(), compiled);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(ResultToString(*q), expected_query);
  }
}

TEST_P(StoreTest, ReopenAfterDeleteKeepsAntiMatter) {
  {
    auto store = OpenStore();
    DatasetOptions options = DocOptions();
    options.auto_merge = false;  // keep the anti-matter in its own component
    auto ds = store->OpenDataset("docs", options);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    Rng rng(11);
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(i, &rng)).ok());
    }
    ASSERT_TRUE((*ds)->Flush().ok());
    ASSERT_TRUE((*ds)->Delete(10).ok());
    ASSERT_TRUE((*ds)->Delete(55).ok());
    ASSERT_TRUE((*ds)->InsertJson(R"({"id": 77, "name": "replaced"})").ok());
    ASSERT_TRUE((*ds)->Flush().ok());
    ASSERT_GE((*ds)->component_count(), 2u);
  }

  auto store = OpenStore();
  auto ds = store->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  Value record;
  // Anti-matter survives the restart: deleted keys stay deleted even
  // though an older component still holds their records.
  EXPECT_TRUE((*ds)->Lookup(10, &record).IsNotFound());
  EXPECT_TRUE((*ds)->Lookup(55, &record).IsNotFound());
  ASSERT_TRUE((*ds)->Lookup(77, &record).ok());
  EXPECT_EQ(record.Get("name").string_value(), "replaced");
  ASSERT_TRUE((*ds)->Lookup(11, &record).ok());
}

TEST_P(StoreTest, OpenSweepsStaleTempAndOrphanFiles) {
  {
    auto store = OpenStore();
    auto ds = store->OpenDataset("docs", DocOptions());
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    Rng rng(3);
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(i, &rng)).ok());
    }
    ASSERT_TRUE((*ds)->Flush().ok());
  }
  // Simulate a crash between component write and manifest rewrite: a
  // leftover temp file and a fully-renamed component the manifest never
  // recorded. A similarly named file of another dataset must survive.
  const std::string ds_dir = dir_ + "/docs";
  const std::string tmp = ds_dir + "/docs_999.cmp.tmp";
  const std::string orphan = ds_dir + "/docs_777.cmp";
  const std::string foreign = ds_dir + "/docs_extra_3.cmp";
  for (const std::string& path : {tmp, orphan, foreign}) {
    std::ofstream(path) << "garbage";
  }

  auto store = OpenStore();
  EXPECT_FALSE(std::filesystem::exists(tmp));
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_TRUE(std::filesystem::exists(foreign));
  auto ds = store->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  Value record;
  EXPECT_TRUE((*ds)->Lookup(25, &record).ok());
}

TEST_P(StoreTest, SnapshotIsolationAcrossFlushAndMerge) {
  auto store = OpenStore();
  auto ds_or = store->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  Rng rng(19);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  // Unflushed writes land in the snapshot too (memtable is part of the
  // pinned view).
  ASSERT_TRUE(ds->InsertJson(R"({"id": 500, "name": "pending"})").ok());

  Snapshot::Ref before = ds->GetSnapshot();
  const auto before_scan = ScanAll(*before);
  const size_t before_components = before->component_count();

  // Now rewrite history: delete, upsert, insert a new batch, flush, and
  // merge everything into one component.
  ASSERT_TRUE(ds->Delete(0).ok());
  ASSERT_TRUE(ds->InsertJson(R"({"id": 1, "name": "rewritten"})").ok());
  for (int64_t i = 200; i < 400; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(ds->MergeAll().ok());
  ASSERT_EQ(ds->component_count(), 1u);

  // The pre-flush snapshot still serves the old view, byte for byte —
  // including components that were merged away underneath it.
  EXPECT_EQ(before->component_count(), before_components);
  EXPECT_EQ(ScanAll(*before), before_scan);
  Value record;
  ASSERT_TRUE(before->Lookup(0, &record).ok());
  ASSERT_TRUE(before->Lookup(500, &record).ok());
  EXPECT_EQ(record.Get("name").string_value(), "pending");
  EXPECT_TRUE(before->Lookup(300, &record).IsNotFound());
  for (bool compiled : {false, true}) {
    auto q = RunQuery(*before, CountByTagPlan(), compiled);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
  }

  // New snapshots see the post-merge state.
  Snapshot::Ref after = ds->GetSnapshot();
  EXPECT_EQ(after->component_count(), 1u);
  EXPECT_TRUE(after->Lookup(0, &record).IsNotFound());
  ASSERT_TRUE(after->Lookup(1, &record).ok());
  EXPECT_EQ(record.Get("name").string_value(), "rewritten");
  ASSERT_TRUE(after->Lookup(300, &record).ok());

  // Dropping the old snapshot finally deletes the merged-away files.
  const uintmax_t held = std::filesystem::file_size(
      std::filesystem::path(after->component(0).path()));
  (void)held;
  before.reset();
  size_t cmp_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/docs")) {
    if (entry.path().extension() == ".cmp") ++cmp_files;
  }
  EXPECT_EQ(cmp_files, 1u);
}

TEST_P(StoreTest, CursorSurvivesConcurrentMerge) {
  auto store = OpenStore();
  auto ds_or = store->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  Rng rng(23);
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  // Open a scan, then merge + mutate underneath it; the cursor pins its
  // snapshot and must keep returning the pre-merge view.
  auto cursor = ds->Scan(Projection::All());
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  ASSERT_TRUE(ds->Delete(150).ok());
  ASSERT_TRUE(ds->MergeAll().ok());
  size_t seen = 0;
  bool saw_150 = false;
  while (true) {
    auto ok = (*cursor)->Next();
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    if (!*ok) break;
    saw_150 |= (*cursor)->key() == 150;
    ++seen;
  }
  EXPECT_EQ(seen, 300u);
  EXPECT_TRUE(saw_150);
}

TEST_P(StoreTest, LayoutMismatchOnReopenIsInvalidArgument) {
  {
    auto store = OpenStore();
    auto ds = store->OpenDataset("docs", DocOptions());
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    ASSERT_TRUE((*ds)->InsertJson(R"({"id": 1})").ok());
    ASSERT_TRUE((*ds)->Flush().ok());
  }
  auto store = OpenStore();
  DatasetOptions wrong = DocOptions();
  wrong.layout = GetParam() == LayoutKind::kOpen ? LayoutKind::kVb
                                                 : LayoutKind::kOpen;
  auto ds = store->OpenDataset("docs", wrong);
  ASSERT_FALSE(ds.ok());
  EXPECT_TRUE(ds.status().IsInvalidArgument()) << ds.status().ToString();
  EXPECT_NE(ds.status().message().find("layout"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, StoreTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// ------------------------------------------------- non-parameterized

TEST(StoreOptionsTest, ValidationNamesTheBadField) {
  const std::string dir = testing::TempDir() + "/store_validate";
  std::filesystem::remove_all(dir);
  {
    StoreOptions options;  // empty dir
    auto store = Store::Open(options);
    ASSERT_FALSE(store.ok());
    EXPECT_TRUE(store.status().IsInvalidArgument());
    EXPECT_NE(store.status().message().find("dir"), std::string::npos);
  }
  {
    StoreOptions options;
    options.dir = dir;
    options.page_size = 100;
    auto store = Store::Open(options);
    ASSERT_FALSE(store.ok());
    EXPECT_NE(store.status().message().find("page_size"), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

TEST(StoreOptionsTest, DatasetValidationNamesTheBadField) {
  const std::string dir = testing::TempDir() + "/store_validate_ds";
  std::filesystem::remove_all(dir);
  StoreOptions store_options;
  store_options.dir = dir;
  store_options.page_size = kPage;
  store_options.cache_bytes = 64 * kPage;
  auto store = Store::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  struct Case {
    const char* field;
    DatasetOptions options;
  };
  std::vector<Case> cases;
  {
    DatasetOptions o;
    o.size_ratio = 1.0;
    cases.push_back({"size_ratio", o});
  }
  {
    DatasetOptions o;
    o.max_components = 1;
    cases.push_back({"max_components", o});
  }
  {
    DatasetOptions o;
    o.pk_field = "";
    cases.push_back({"pk_field", o});
  }
  {
    DatasetOptions o;
    o.memtable_bytes = 0;
    cases.push_back({"memtable_bytes", o});
  }
  for (const Case& c : cases) {
    auto ds = (*store)->OpenDataset("bad", c.options);
    ASSERT_FALSE(ds.ok()) << c.field;
    EXPECT_TRUE(ds.status().IsInvalidArgument()) << ds.status().ToString();
    EXPECT_NE(ds.status().message().find(c.field), std::string::npos)
        << ds.status().ToString();
  }
  // A '/' in the name must be rejected, not treated as a path.
  auto ds = (*store)->OpenDataset("a/b", DatasetOptions());
  ASSERT_FALSE(ds.ok());
  EXPECT_TRUE(ds.status().IsInvalidArgument());
  std::filesystem::remove_all(dir);
}

TEST(StoreMultiDatasetTest, TwoDatasetsRecoverIndependently) {
  const std::string dir = testing::TempDir() + "/store_multi";
  std::filesystem::remove_all(dir);
  StoreOptions options;
  options.dir = dir;
  options.page_size = kPage;
  options.cache_bytes = 256 * kPage;
  {
    auto store = Store::Open(options);
    ASSERT_TRUE(store.ok());
    DatasetOptions row;
    row.layout = LayoutKind::kVb;
    auto a = (*store)->OpenDataset("rows", row);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    DatasetOptions col;
    col.layout = LayoutKind::kAmax;
    auto b = (*store)->OpenDataset("cols", col);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_TRUE((*a)->InsertJson(R"({"id": 1, "k": "row"})").ok());
    ASSERT_TRUE((*b)->InsertJson(R"({"id": 1, "k": "col"})").ok());
    ASSERT_TRUE((*a)->Flush().ok());
    ASSERT_TRUE((*b)->Flush().ok());
    EXPECT_EQ((*store)->GetDataset("rows"), *a);
    EXPECT_EQ((*store)->GetDataset("missing"), nullptr);
    // Re-opening an open dataset with a contradictory identity fails the
    // same way it would after a restart.
    DatasetOptions wrong;
    wrong.layout = LayoutKind::kAmax;
    auto dup = (*store)->OpenDataset("rows", wrong);
    ASSERT_FALSE(dup.ok());
    EXPECT_TRUE(dup.status().IsInvalidArgument());
    EXPECT_NE(dup.status().message().find("layout"), std::string::npos);
    // Matching identity returns the same instance.
    auto same = (*store)->OpenDataset("rows", row);
    ASSERT_TRUE(same.ok());
    EXPECT_EQ(*same, *a);
  }
  auto store = Store::Open(options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->ListDatasets(),
            (std::vector<std::string>{"cols", "rows"}));
  DatasetOptions row;
  row.layout = LayoutKind::kVb;
  auto a = (*store)->OpenDataset("rows", row);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  DatasetOptions col;
  col.layout = LayoutKind::kAmax;
  auto b = (*store)->OpenDataset("cols", col);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  Value record;
  ASSERT_TRUE((*a)->Lookup(1, &record).ok());
  EXPECT_EQ(record.Get("k").string_value(), "row");
  ASSERT_TRUE((*b)->Lookup(1, &record).ok());
  EXPECT_EQ(record.Get("k").string_value(), "col");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lsmcol
