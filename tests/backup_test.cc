// Integration tests for consistent hot backup and restore: roundtrips
// across all four layouts (WAL tail included), backups concurrent with
// ingest + flush + merge, incremental reuse, restore-over-existing
// refusal, hardlink opt-in, quarantine refusal, and crash images of the
// backup directory itself.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/json/parser.h"
#include "src/storage/backup_manifest.h"
#include "src/storage/fault_injection_fs.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

Value MakeRecord(int64_t id) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("name", Value::String("user_" + std::to_string(id)));
  v.Set("score", Value::Double(static_cast<double>(id) * 0.5));
  return v;
}

/// Full-scan digest: every surviving (key, record-as-json) pair in order.
std::vector<std::pair<int64_t, std::string>> ScanDigest(Dataset* ds) {
  std::vector<std::pair<int64_t, std::string>> out;
  auto cursor = ds->Scan(Projection::All());
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  if (!cursor.ok()) return out;
  while (true) {
    auto ok = (*cursor)->Next();
    EXPECT_TRUE(ok.ok()) << ok.status().ToString();
    if (!ok.ok() || !*ok) break;
    Value v;
    Status st = (*cursor)->Record(&v);
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok()) break;
    out.emplace_back((*cursor)->key(), ToJson(v));
  }
  return out;
}

class BackupTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    const std::string base =
        testing::TempDir() + "/backup_" +
        std::string(LayoutKindName(GetParam())) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = base + "/store";
    backup_dir_ = base + "/backup";
    restore_dir_ = base + "/restored";
    std::filesystem::remove_all(base);
  }
  void TearDown() override {
    std::filesystem::remove_all(
        std::filesystem::path(dir_).parent_path());
  }

  StoreOptions Options(FileSystem* fs = nullptr, bool wal = false) {
    StoreOptions options;
    options.dir = dir_;
    options.page_size = kPage;
    options.cache_bytes = 512 * kPage;
    options.fs = fs;
    options.wal.enabled = wal;
    return options;
  }

  DatasetOptions DocOptions() {
    DatasetOptions options;
    options.layout = GetParam();
    options.auto_merge = false;
    return options;
  }

  /// Open the restored directory and return its docs digest.
  std::vector<std::pair<int64_t, std::string>> RestoredDigest(
      FileSystem* fs = nullptr, bool wal = false) {
    StoreOptions options;
    options.dir = restore_dir_;
    options.page_size = kPage;
    options.cache_bytes = 512 * kPage;
    options.fs = fs;
    options.wal.enabled = wal;
    auto store = Store::Open(options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    if (!store.ok()) return {};
    auto ds = (*store)->OpenDataset("docs", DocOptions());
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    if (!ds.ok()) return {};
    return ScanDigest(*ds);
  }

  std::string dir_;
  std::string backup_dir_;
  std::string restore_dir_;
};

// Tentpole: backup of a WAL-enabled store captures flushed components
// AND the acked-but-unflushed tail; the restore replays it.
TEST_P(BackupTest, RoundtripIncludesWalTail) {
  auto store = Store::Open(Options(nullptr, /*wal=*/true));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  // Acked but never flushed: only the WAL carries these.
  for (int64_t i = 2000; i < 2050; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Delete(5).ok());  // anti-matter rides the WAL too

  const auto want = ScanDigest(ds);
  ASSERT_EQ(want.size(), 120u + 50u - 1u);
  ASSERT_TRUE((*store)->CreateBackup(backup_dir_).ok());

  // The live store keeps moving after the pin; the backup must not.
  ASSERT_TRUE(ds->Insert(MakeRecord(9999)).ok());
  ASSERT_TRUE(ds->Flush().ok());

  ASSERT_TRUE(Store::RestoreFromBackup(backup_dir_, restore_dir_).ok());
  EXPECT_EQ(RestoredDigest(nullptr, /*wal=*/true), want);
}

// Tentpole: CreateBackup concurrent with ingest, flushes, and merges.
// Snapshot pinning keeps merged-away components alive for the copy, and
// the restored store is exactly the pinned view: a contiguous prefix of
// the sequentially-inserted keys, bit-identical records.
TEST_P(BackupTest, ConcurrentWithIngestAndMerge) {
  StoreOptions options = Options(nullptr, /*wal=*/true);
  options.background_threads = 2;
  auto store = Store::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  DatasetOptions doc;
  doc.layout = GetParam();
  doc.auto_merge = true;           // merges fire behind the backup
  doc.memtable_bytes = 32 * 1024;  // frequent flushes
  auto ds_or = (*store)->OpenDataset("docs", doc);
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;

  std::atomic<int64_t> acked{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int64_t i = 0; i < 20000 && !stop.load(); ++i) {
      Status st = ds->Insert(MakeRecord(i));
      if (!st.ok()) break;
      acked.store(i + 1, std::memory_order_release);
    }
  });
  // Let flushes/merges get going, then back up mid-flight.
  while (acked.load(std::memory_order_acquire) < 500) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int64_t acked_before_pin = acked.load(std::memory_order_acquire);
  Status backup = (*store)->CreateBackup(backup_dir_);
  stop = true;
  writer.join();
  ASSERT_TRUE(backup.ok()) << backup.ToString();
  ASSERT_TRUE((*store)->Close().ok());

  ASSERT_TRUE(Store::RestoreFromBackup(backup_dir_, restore_dir_).ok());
  const auto restored = RestoredDigest(nullptr, /*wal=*/true);
  // Consistency: exactly the keys 0..M-1 for some M — no holes, no
  // partial records — and the pin happened at or after the last insert
  // acked before CreateBackup was called.
  ASSERT_GE(static_cast<int64_t>(restored.size()), acked_before_pin);
  for (size_t i = 0; i < restored.size(); ++i) {
    ASSERT_EQ(restored[i].first, static_cast<int64_t>(i));
    ASSERT_EQ(restored[i].second, ToJson(MakeRecord(restored[i].first)));
  }
}

// Satellite: a second backup into the same directory reuses unchanged
// component files (they are not rewritten) and restores the new state.
TEST_P(BackupTest, IncrementalBackupReusesComponents) {
  auto store = Store::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  ASSERT_TRUE((*store)->CreateBackup(backup_dir_).ok());
  auto first = ReadBackupManifest(backup_dir_);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->sequence, 1u);

  // Identify the first generation's component copy and its mtime.
  std::string reused_path;
  for (const BackupFileEntry& f : first->files) {
    if (f.kind == BackupFileKind::kComponent) {
      reused_path = backup_dir_ + "/" + f.rel_path;
      break;
    }
  }
  ASSERT_FALSE(reused_path.empty());
  const auto mtime_before = std::filesystem::last_write_time(reused_path);

  for (int64_t i = 1000; i < 1100; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  const auto want = ScanDigest(ds);
  ASSERT_TRUE((*store)->CreateBackup(backup_dir_).ok());

  auto second = ReadBackupManifest(backup_dir_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->sequence, 2u);
  size_t components = 0;
  for (const BackupFileEntry& f : second->files) {
    if (f.kind == BackupFileKind::kComponent) ++components;
  }
  EXPECT_EQ(components, 2u);
  // The unchanged component was reused, not re-copied.
  EXPECT_EQ(std::filesystem::last_write_time(reused_path), mtime_before);

  ASSERT_TRUE(Store::RestoreFromBackup(backup_dir_, restore_dir_).ok());
  EXPECT_EQ(RestoredDigest(), want);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, BackupTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// ------------------------------------------------- non-parameterized

class BackupFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string base =
        testing::TempDir() + "/backupfs_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = base + "/store";
    backup_dir_ = base + "/backup";
    restore_dir_ = base + "/restored";
    std::filesystem::remove_all(base);
  }
  void TearDown() override {
    std::filesystem::remove_all(
        std::filesystem::path(dir_).parent_path());
  }

  StoreOptions Options(FileSystem* fs = nullptr) {
    StoreOptions options;
    options.dir = dir_;
    options.page_size = kPage;
    options.cache_bytes = 256 * kPage;
    options.fs = fs;
    return options;
  }

  std::string dir_;
  std::string backup_dir_;
  std::string restore_dir_;
};

// Satellite: restoring over anything that already holds files refuses.
TEST_F(BackupFsTest, RestoreRefusesNonEmptyTarget) {
  auto store = Store::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds = (*store)->OpenDataset("docs");
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE((*ds)->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE((*ds)->Flush().ok());
  ASSERT_TRUE((*store)->CreateBackup(backup_dir_).ok());

  // Over the live store root: refused.
  EXPECT_EQ(Store::RestoreFromBackup(backup_dir_, dir_).code(),
            StatusCode::kAlreadyExists);
  // Over a directory with an unrelated file: refused.
  std::filesystem::create_directories(restore_dir_);
  { std::ofstream(restore_dir_ + "/keep.me") << "x"; }
  EXPECT_EQ(Store::RestoreFromBackup(backup_dir_, restore_dir_).code(),
            StatusCode::kAlreadyExists);
  // A fresh directory: fine.
  std::filesystem::remove_all(restore_dir_);
  EXPECT_TRUE(Store::RestoreFromBackup(backup_dir_, restore_dir_).ok());
}

// Satellite: a quarantined component refuses the backup (back up clean
// data; repair damage first), naming the component.
TEST_F(BackupFsTest, QuarantineRefusesBackup) {
  auto store = Store::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs");
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  // Corrupt the single component on disk and let a scrub find it.
  std::string victim;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/docs")) {
    if (entry.path().extension() == ".cmp") victim = entry.path().string();
  }
  ASSERT_FALSE(victim.empty());
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    f.put('\x7f');
  }
  auto pass = (*store)->ScrubNow();
  ASSERT_TRUE(pass.ok());
  ASSERT_EQ(pass->damaged, 1u);

  Status refused = (*store)->CreateBackup(backup_dir_);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("quarantined"), std::string::npos)
      << refused.ToString();
  EXPECT_FALSE(std::filesystem::exists(backup_dir_ + "/BACKUP.MANIFEST"));
}

// Satellite: hardlink opt-in produces a verified, restorable backup.
TEST_F(BackupFsTest, HardlinkBackupRestores) {
  auto store = Store::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs");
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 80; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  const auto want = ScanDigest(ds);
  BackupOptions opts;
  opts.hardlink = true;
  ASSERT_TRUE((*store)->CreateBackup(backup_dir_, opts).ok());
  ASSERT_TRUE(Store::RestoreFromBackup(backup_dir_, restore_dir_).ok());
  StoreOptions roptions;
  roptions.dir = restore_dir_;
  roptions.page_size = kPage;
  roptions.cache_bytes = 256 * kPage;
  auto rstore = Store::Open(roptions);
  ASSERT_TRUE(rstore.ok());
  auto rds = (*rstore)->OpenDataset("docs");
  ASSERT_TRUE(rds.ok());
  EXPECT_EQ(ScanDigest(*rds), want);
}

// Tentpole: the backup directory itself is crash-consistent. A crash
// image (synced content only) taken after CreateBackup returns restores
// bit-identically; an image of an *aborted* second backup still restores
// the first backup — the catalog-written-last protocol at work.
TEST_F(BackupFsTest, BackupDirectorySurvivesCrashImages) {
  FaultInjectionFs fault_fs;
  fault_fs.SetTrackUnsynced(true);
  auto store = Store::Open(Options(&fault_fs));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs");
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  const auto want_first = ScanDigest(ds);
  ASSERT_TRUE((*store)->CreateBackup(backup_dir_).ok());

  // CopySyncedSnapshot is single-directory; image the backup root and
  // its per-dataset subdirectory separately.
  auto image_backup = [&](const std::string& image) {
    ASSERT_TRUE(fault_fs.CopySyncedSnapshot(backup_dir_, image).ok());
    ASSERT_TRUE(
        fault_fs.CopySyncedSnapshot(backup_dir_ + "/docs", image + "/docs")
            .ok());
  };

  // Crash image right after success: everything the catalog references
  // was synced before the catalog landed.
  const std::string image1 = restore_dir_ + "_img1";
  image_backup(image1);
  {
    Status restored =
        Store::RestoreFromBackup(image1, restore_dir_ + "_r1", &fault_fs);
    ASSERT_TRUE(restored.ok()) << restored.ToString();
  }
  {
    StoreOptions roptions;
    roptions.dir = restore_dir_ + "_r1";
    roptions.page_size = kPage;
    roptions.cache_bytes = 256 * kPage;
    roptions.fs = &fault_fs;
    auto rstore = Store::Open(roptions);
    ASSERT_TRUE(rstore.ok());
    auto rds = (*rstore)->OpenDataset("docs");
    ASSERT_TRUE(rds.ok());
    EXPECT_EQ(ScanDigest(*rds), want_first);
  }

  // Second backup dies mid-write (every new catalog/manifest write
  // fails); the directory's authoritative content must remain the first
  // backup, even through a crash image.
  for (int64_t i = 500; i < 560; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  FaultRule rule;
  rule.path_substring = "BACKUP.MANIFEST";
  rule.op = FaultOp::kWrite;
  rule.max_failures = -1;
  fault_fs.AddRule(rule);
  EXPECT_FALSE((*store)->CreateBackup(backup_dir_).ok());
  fault_fs.ClearRules();

  const std::string image2 = restore_dir_ + "_img2";
  image_backup(image2);
  ASSERT_TRUE(
      Store::RestoreFromBackup(image2, restore_dir_ + "_r2", &fault_fs).ok());
  StoreOptions roptions;
  roptions.dir = restore_dir_ + "_r2";
  roptions.page_size = kPage;
  roptions.cache_bytes = 256 * kPage;
  roptions.fs = &fault_fs;
  auto rstore = Store::Open(roptions);
  ASSERT_TRUE(rstore.ok());
  auto rds = (*rstore)->OpenDataset("docs");
  ASSERT_TRUE(rds.ok());
  EXPECT_EQ(ScanDigest(*rds), want_first);  // still the FIRST backup
}

}  // namespace
}  // namespace lsmcol
