// Unit tests for src/common: Status/Result, Slice, Buffer codecs, Rng.

#include <gtest/gtest.h>

#include <limits>

#include "src/common/buffer.h"
#include "src/common/rng.h"
#include "src/common/slice.h"
#include "src/common/status.h"

namespace lsmcol {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad page");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "Corruption: bad page");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Doubled(Result<int> in) {
  LSMCOL_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("boom")).ok());
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("") == Slice(""));
}

TEST(SliceTest, SubSliceAndRemovePrefix) {
  Slice s("hello world");
  EXPECT_EQ(s.SubSlice(6, 5).ToString(), "world");
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(SliceTest, ZigZagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456},
                    int64_t{-123456}, std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(BufferTest, FixedWidthRoundTrip) {
  Buffer b;
  b.AppendFixed32(0xDEADBEEFu);
  b.AppendFixed64(0x0123456789ABCDEFULL);
  b.AppendDouble(3.25);
  BufferReader r(b.slice());
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  double d = 0;
  ASSERT_TRUE(r.ReadFixed32(&v32).ok());
  ASSERT_TRUE(r.ReadFixed64(&v64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(r.empty());
}

TEST(BufferTest, VarintRoundTripExhaustiveBoundaries) {
  Buffer b;
  std::vector<uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ULL << shift);
    values.push_back((1ULL << shift) - 1);
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  for (uint64_t v : values) b.AppendVarint64(v);
  BufferReader r(b.slice());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(r.ReadVarint64(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.empty());
}

TEST(BufferTest, SignedVarintRoundTrip) {
  Buffer b;
  std::vector<int64_t> values = {0,   -1,   1,    -64,  64,
                                 -65, 1000, -1000};
  values.push_back(std::numeric_limits<int64_t>::min());
  values.push_back(std::numeric_limits<int64_t>::max());
  for (int64_t v : values) b.AppendSignedVarint64(v);
  BufferReader r(b.slice());
  for (int64_t v : values) {
    int64_t got = 0;
    ASSERT_TRUE(r.ReadSignedVarint64(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(BufferTest, LengthPrefixedRoundTrip) {
  Buffer b;
  b.AppendLengthPrefixed(Slice("alpha"));
  b.AppendLengthPrefixed(Slice(""));
  b.AppendLengthPrefixed(Slice("omega"));
  BufferReader r(b.slice());
  Slice s;
  ASSERT_TRUE(r.ReadLengthPrefixed(&s).ok());
  EXPECT_EQ(s.ToString(), "alpha");
  ASSERT_TRUE(r.ReadLengthPrefixed(&s).ok());
  EXPECT_EQ(s.ToString(), "");
  ASSERT_TRUE(r.ReadLengthPrefixed(&s).ok());
  EXPECT_EQ(s.ToString(), "omega");
}

TEST(BufferTest, ReadPastEndIsCorruption) {
  Buffer b;
  b.AppendFixed32(7);
  BufferReader r(b.slice());
  uint64_t v64 = 0;
  EXPECT_TRUE(r.ReadFixed64(&v64).IsCorruption());
  Slice s;
  EXPECT_TRUE(r.ReadBytes(5, &s).IsCorruption());
}

TEST(BufferTest, TruncatedVarintIsCorruption) {
  Buffer b;
  b.AppendByte(0x80);  // continuation bit set, no next byte
  BufferReader r(b.slice());
  uint64_t v = 0;
  EXPECT_TRUE(r.ReadVarint64(&v).IsCorruption());
}

TEST(BufferTest, PatchFixed32) {
  Buffer b;
  b.AppendFixed32(0);
  b.Append(Slice("payload"));
  b.PatchFixed32(0, static_cast<uint32_t>(b.size()));
  EXPECT_EQ(DecodeFixed32(b.data()), b.size());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRangeStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, WordRespectsLengthAndAlphabet) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    std::string w = rng.Word(3, 8);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 8u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(RngTest, BernoulliIsRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_GT(hits, 2700);
  EXPECT_LT(hits, 3300);
}

}  // namespace
}  // namespace lsmcol
