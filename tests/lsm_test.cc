// Integration tests for the LSM engine across all four layouts: flush,
// tiering merges (including the columnar vertical merge), reconciliation
// of upserts/deletes/anti-matter, seeks, and batched point lookups.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "src/common/rng.h"
#include "src/json/parser.h"
#include "src/lsm/dataset.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;  // small pages exercise leaf machinery

class LsmTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/lsm_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    cache_ = std::make_unique<BufferCache>(512 * kPage, kPage);
  }

  void TearDown() override {
    dataset_.reset();
    std::filesystem::remove_all(dir_);
  }

  DatasetOptions DefaultOptions() {
    DatasetOptions options;
    options.layout = GetParam();
    options.dir = dir_;
    options.page_size = kPage;
    options.memtable_bytes = 64 * 1024;
    options.amax_max_records = 500;
    return options;
  }

  void Open(const DatasetOptions& options) {
    auto ds = Dataset::Create(options, cache_.get());
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(*ds);
  }

  Value MakeRecord(int64_t id, Rng* rng) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(id));
    v.Set("name", Value::String("user_" + std::to_string(id)));
    v.Set("score", Value::Double(static_cast<double>(id) * 0.5));
    v.Set("active", Value::Bool(id % 2 == 0));
    Value tags = Value::MakeArray();
    for (uint64_t t = 0; t < rng->Uniform(4); ++t) {
      tags.Push(Value::String("tag" + std::to_string(rng->Uniform(10))));
    }
    v.Set("tags", std::move(tags));
    Value nested = Value::MakeObject();
    nested.Set("level", Value::Int(static_cast<int64_t>(rng->Uniform(5))));
    v.Set("meta", std::move(nested));
    return v;
  }

  // Scan everything and return records keyed by id.
  std::map<int64_t, Value> ScanAll() {
    std::map<int64_t, Value> out;
    auto cursor = dataset_->Scan(Projection::All());
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    while (true) {
      auto ok = (*cursor)->Next();
      EXPECT_TRUE(ok.ok()) << ok.status().ToString();
      if (!*ok) break;
      Value v;
      Status st = (*cursor)->Record(&v);
      EXPECT_TRUE(st.ok()) << st.ToString();
      int64_t key = (*cursor)->key();
      EXPECT_EQ(out.count(key), 0u) << "duplicate key " << key;
      out[key] = std::move(v);
    }
    return out;
  }

  std::string dir_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<Dataset> dataset_;
};

TEST_P(LsmTest, InsertScanWithoutFlush) {
  Open(DefaultOptions());
  Rng rng(1);
  std::map<int64_t, Value> expected;
  for (int64_t i = 0; i < 50; ++i) {
    Value v = MakeRecord(i, &rng);
    expected[i] = v;
    ASSERT_TRUE(dataset_->Insert(v).ok());
  }
  EXPECT_EQ(dataset_->component_count(), 0u);
  auto got = ScanAll();
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, v] : expected) {
    EXPECT_TRUE(ValueEquivalent(got[k], v))
        << k << ": " << ToJson(got[k]) << " vs " << ToJson(v);
  }
}

TEST_P(LsmTest, FlushPersistsRecords) {
  Open(DefaultOptions());
  Rng rng(2);
  std::map<int64_t, Value> expected;
  for (int64_t i = 0; i < 200; ++i) {
    Value v = MakeRecord(i * 3, &rng);
    expected[i * 3] = v;
    ASSERT_TRUE(dataset_->Insert(v).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  EXPECT_GE(dataset_->component_count(), 1u);
  EXPECT_TRUE(dataset_->memtable().empty());
  EXPECT_GT(dataset_->OnDiskBytes(), 0u);
  auto got = ScanAll();
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, v] : expected) {
    EXPECT_TRUE(ValueEquivalent(got[k], v)) << k;
  }
}

TEST_P(LsmTest, UpsertAcrossComponentsNewestWins) {
  Open(DefaultOptions());
  Rng rng(3);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  // Overwrite even ids with a marker field.
  for (int64_t i = 0; i < 100; i += 2) {
    Value v = MakeRecord(i, &rng);
    v.Set("version", Value::Int(2));
    ASSERT_TRUE(dataset_->Insert(v).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  auto got = ScanAll();
  ASSERT_EQ(got.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(got[i].Get("version").int_value(), 2) << i;
    } else {
      EXPECT_TRUE(got[i].Get("version").is_missing()) << i;
    }
  }
}

TEST_P(LsmTest, DeleteAnnihilatesAcrossComponents) {
  Open(DefaultOptions());
  Rng rng(4);
  for (int64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  for (int64_t i = 0; i < 60; i += 3) {
    ASSERT_TRUE(dataset_->Delete(i).ok());
  }
  // Half the deletes stay in the memtable, half get flushed.
  ASSERT_TRUE(dataset_->Flush().ok());
  auto got = ScanAll();
  EXPECT_EQ(got.size(), 40u);
  for (int64_t i = 0; i < 60; ++i) {
    EXPECT_EQ(got.count(i), i % 3 == 0 ? 0u : 1u) << i;
  }
  Value out;
  EXPECT_TRUE(dataset_->Lookup(0, &out).IsNotFound());
  EXPECT_TRUE(dataset_->Lookup(1, &out).ok());
}

TEST_P(LsmTest, MergeAllCompactsToOneComponent) {
  auto options = DefaultOptions();
  options.auto_merge = false;
  Open(options);
  Rng rng(5);
  std::map<int64_t, Value> expected;
  for (int round = 0; round < 4; ++round) {
    for (int64_t i = round * 50; i < (round + 1) * 50; ++i) {
      Value v = MakeRecord(i, &rng);
      expected[i] = v;
      ASSERT_TRUE(dataset_->Insert(v).ok());
    }
    ASSERT_TRUE(dataset_->Flush().ok());
  }
  EXPECT_EQ(dataset_->component_count(), 4u);
  ASSERT_TRUE(dataset_->MergeAll().ok());
  EXPECT_EQ(dataset_->component_count(), 1u);
  auto got = ScanAll();
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, v] : expected) {
    EXPECT_TRUE(ValueEquivalent(got[k], v))
        << k << "\n got: " << ToJson(got[k]) << "\n exp: " << ToJson(v);
  }
}

TEST_P(LsmTest, MergeDropsAnnihilatedPairsAndKeepsAntiMatterOtherwise) {
  auto options = DefaultOptions();
  options.auto_merge = false;
  Open(options);
  Rng rng(6);
  // Component 1 (oldest): ids 0..29.
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  // Component 2: deletes of 0..9.
  for (int64_t i = 0; i < 10; ++i) ASSERT_TRUE(dataset_->Delete(i).ok());
  ASSERT_TRUE(dataset_->Flush().ok());
  // Component 3: re-insert 0..4.
  for (int64_t i = 0; i < 5; ++i) {
    Value v = MakeRecord(i, &rng);
    v.Set("rebirth", Value::Bool(true));
    ASSERT_TRUE(dataset_->Insert(v).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  ASSERT_EQ(dataset_->component_count(), 3u);
  ASSERT_TRUE(dataset_->MergeAll().ok());
  auto got = ScanAll();
  EXPECT_EQ(got.size(), 25u);  // 30 - 10 deleted + 5 reborn
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(got[i].Get("rebirth").bool_value()) << i;
  }
  for (int64_t i = 5; i < 10; ++i) EXPECT_EQ(got.count(i), 0u) << i;
}

TEST_P(LsmTest, PartialMergeKeepsAntiMatterForOlderComponents) {
  auto options = DefaultOptions();
  options.auto_merge = false;
  Open(options);
  Rng rng(7);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());  // oldest: 0..19
  for (int64_t i = 0; i < 10; ++i) ASSERT_TRUE(dataset_->Delete(i).ok());
  ASSERT_TRUE(dataset_->Flush().ok());
  for (int64_t i = 100; i < 110; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  ASSERT_EQ(dataset_->component_count(), 3u);
  // Merge only the two NEWEST components; anti-matter must survive so the
  // oldest component's records stay deleted.
  // (MaybeMerge would decide on sizes; force the range via MergeAll of a
  // sub-range is internal, so emulate by checking the policy result.)
  auto scan1 = ScanAll();
  EXPECT_EQ(scan1.size(), 20u);  // 10 survivors + 10 new
  ASSERT_TRUE(dataset_->MaybeMerge().ok());
  auto scan2 = ScanAll();
  EXPECT_EQ(scan2.size(), 20u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(scan2.count(i), 0u) << i;
}

TEST_P(LsmTest, AutoFlushAndPolicyKeepComponentCountBounded) {
  auto options = DefaultOptions();
  options.memtable_bytes = 16 * 1024;
  Open(options);
  Rng rng(8);
  for (int64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, &rng)).ok());
  }
  EXPECT_GT(dataset_->stats().flushes, 2u);
  EXPECT_LE(dataset_->component_count(),
            static_cast<size_t>(options.max_components) + 1);
  auto got = ScanAll();
  EXPECT_EQ(got.size(), 3000u);
}

TEST_P(LsmTest, SeekForwardSkipsLeaves) {
  Open(DefaultOptions());
  Rng rng(9);
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  auto cursor = dataset_->Scan(Projection::All());
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE((*cursor)->SeekForward(1500).ok());
  auto ok = (*cursor)->Next();
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(*ok);
  EXPECT_EQ((*cursor)->key(), 1500);
  // Seek again further ahead.
  ASSERT_TRUE((*cursor)->SeekForward(1999).ok());
  ok = (*cursor)->Next();
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(*ok);
  EXPECT_EQ((*cursor)->key(), 1999);
  ok = (*cursor)->Next();
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST_P(LsmTest, LookupBatchAscending) {
  Open(DefaultOptions());
  Rng rng(10);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i * 2, &rng)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  auto batch = dataset_->NewLookupBatch(Projection::All());
  ASSERT_TRUE(batch.ok());
  int found_count = 0;
  for (int64_t key = 0; key < 1000; key += 7) {
    bool found = false;
    Value v;
    ASSERT_TRUE((*batch)->Find(key, &found, &v).ok());
    EXPECT_EQ(found, key % 2 == 0) << key;
    if (found) {
      ++found_count;
      EXPECT_EQ(v.Get("id").int_value(), key);
    }
  }
  EXPECT_GT(found_count, 50);
}

TEST_P(LsmTest, ProjectionScanReturnsOnlyRequestedFields) {
  Open(DefaultOptions());
  Rng rng(11);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(dataset_->Insert(MakeRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  auto cursor = dataset_->Scan(Projection::Of({{"name"}}));
  ASSERT_TRUE(cursor.ok());
  size_t n = 0;
  while (true) {
    auto ok = (*cursor)->Next();
    ASSERT_TRUE(ok.ok());
    if (!*ok) break;
    Value name;
    ASSERT_TRUE((*cursor)->Path({"name"}, &name).ok());
    EXPECT_TRUE(name.is_string());
    EXPECT_EQ(name.string_value(),
              "user_" + std::to_string((*cursor)->key()));
    ++n;
  }
  EXPECT_EQ(n, 100u);
}

TEST_P(LsmTest, SchemaEvolutionAcrossFlushes) {
  Open(DefaultOptions());
  // First flush: minimal records. Later flushes add fields and change a
  // field's type (string -> object union).
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(dataset_->InsertJson(
        "{\"id\": " + std::to_string(i) + ", \"v\": \"s" +
        std::to_string(i) + "\"}").ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  for (int64_t i = 20; i < 40; ++i) {
    ASSERT_TRUE(dataset_->InsertJson(
        "{\"id\": " + std::to_string(i) + ", \"v\": {\"deep\": " +
        std::to_string(i) + "}, \"fresh\": [1, 2]}").ok());
  }
  ASSERT_TRUE(dataset_->Flush().ok());
  auto got = ScanAll();
  ASSERT_EQ(got.size(), 40u);
  EXPECT_EQ(got[5].Get("v").string_value(), "s5");
  EXPECT_EQ(got[25].Get("v").Get("deep").int_value(), 25);
  EXPECT_TRUE(got[5].Get("fresh").is_missing());
  ASSERT_TRUE(got[25].Get("fresh").is_array());
  // Merging mixed-schema components must also work.
  ASSERT_TRUE(dataset_->MergeAll().ok());
  auto merged = ScanAll();
  ASSERT_EQ(merged.size(), 40u);
  EXPECT_EQ(merged[5].Get("v").string_value(), "s5");
  EXPECT_EQ(merged[25].Get("v").Get("deep").int_value(), 25);
}

TEST_P(LsmTest, RandomizedWorkloadMatchesReferenceModel) {
  auto options = DefaultOptions();
  options.memtable_bytes = 24 * 1024;
  Open(options);
  Rng rng(12345);
  std::map<int64_t, Value> model;
  for (int op = 0; op < 4000; ++op) {
    int64_t key = static_cast<int64_t>(rng.Uniform(600));
    if (rng.Bernoulli(0.2) && !model.empty()) {
      ASSERT_TRUE(dataset_->Delete(key).ok());
      model.erase(key);
    } else {
      Value v = MakeRecord(key, &rng);
      v.Set("op", Value::Int(op));
      model[key] = v;
      ASSERT_TRUE(dataset_->Insert(v).ok());
    }
  }
  auto got = ScanAll();
  ASSERT_EQ(got.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_EQ(got.count(k), 1u) << k;
    EXPECT_TRUE(ValueEquivalent(got[k], v))
        << k << "\n got: " << ToJson(got[k]) << "\n exp: " << ToJson(v);
  }
  // Point lookups agree with the model too.
  for (int64_t key = 0; key < 600; key += 13) {
    Value out;
    Status st = dataset_->Lookup(key, &out);
    if (model.count(key)) {
      EXPECT_TRUE(st.ok()) << key << ": " << st.ToString();
    } else {
      EXPECT_TRUE(st.IsNotFound()) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, LsmTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// Layout-specific behaviour: AMAX column reads touch only needed pages.
TEST(AmaxIoTest, ProjectionLimitsBytesRead) {
  const std::string dir = testing::TempDir() + "/amax_io";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  BufferCache cache(4096 * kPage, kPage);
  DatasetOptions options;
  options.layout = LayoutKind::kAmax;
  options.dir = dir;
  options.page_size = kPage;
  options.memtable_bytes = 8u << 20;
  options.amax_max_records = 2000;
  options.compress = false;  // keep megapages wide
  auto ds = Dataset::Create(options, &cache);
  ASSERT_TRUE(ds.ok());
  // A fat text column and a small int column.
  Rng rng(1);
  for (int64_t i = 0; i < 4000; ++i) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(i));
    v.Set("small", Value::Int(i % 97));
    v.Set("fat", Value::String(rng.Word(300, 400)));
    ASSERT_TRUE((*ds)->Insert(v).ok());
  }
  ASSERT_TRUE((*ds)->Flush().ok());

  auto count_bytes = [&](const Projection& projection, bool touch) {
    cache.Clear();  // cold-cache measurement
    cache.ResetStats();
    auto cursor = (*ds)->Scan(projection);
    EXPECT_TRUE(cursor.ok());
    while (true) {
      auto ok = (*cursor)->Next();
      EXPECT_TRUE(ok.ok());
      if (!*ok) break;
      if (touch) {
        Value v;
        EXPECT_TRUE((*cursor)->Record(&v).ok());
      }
    }
    return cache.stats().bytes_read;
  };

  // COUNT(*)-style: keys only — reads Page 0s only.
  uint64_t keys_only = count_bytes(Projection::Of({}), false);
  uint64_t small_col = count_bytes(Projection::Of({{"small"}}), true);
  uint64_t fat_col = count_bytes(Projection::Of({{"fat"}}), true);
  EXPECT_LT(keys_only, small_col);
  EXPECT_LT(small_col, fat_col / 2);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lsmcol
