// Merge-equivalence suite for the run-level columnar merge pipeline
// (batched PK plan, run-copy column stitching, whole-leaf adoption):
//
//  * randomized workloads — overlapping key ranges, upserts, deletes with
//    anti-matter both at and away from the oldest component, dropped-run
//    boundaries straddling leaf edges — asserting query-level equality
//    between the run-level pipeline and the record-at-a-time reference
//    pipeline across all four layouts;
//  * exact ComponentMeta::entry_count on merged components;
//  * merge observability counters (records in/out, runs, adopted leaves);
//  * the whole-leaf adoption fast path on disjoint (append-style) inputs.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/json/parser.h"
#include "src/lsm/dataset.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;  // small pages exercise leaf machinery

bool IsColumnar(LayoutKind layout) {
  return layout == LayoutKind::kApax || layout == LayoutKind::kAmax;
}

Value MakeRecord(int64_t id, uint64_t version) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("name", Value::String("user_" + std::to_string(id) + "_v" +
                              std::to_string(version)));
  v.Set("score", Value::Double(static_cast<double>(id) * 0.25 +
                               static_cast<double>(version)));
  v.Set("active",
        Value::Bool((id + static_cast<int64_t>(version)) % 2 == 0));
  Value tags = Value::MakeArray();
  for (int64_t t = 0; t < (id + static_cast<int64_t>(version)) % 4; ++t) {
    tags.Push(Value::String("tag" + std::to_string((id + t) % 7)));
  }
  v.Set("tags", std::move(tags));
  Value nested = Value::MakeObject();
  nested.Set("level", Value::Int(id % 5));
  v.Set("meta", std::move(nested));
  return v;
}

class MergeTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/merge_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    cache_ = std::make_unique<BufferCache>(1024 * kPage, kPage);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  DatasetOptions BaseOptions(const std::string& name,
                             MergePipeline pipeline) {
    DatasetOptions options;
    options.layout = GetParam();
    options.dir = dir_;
    options.name = name;
    options.page_size = kPage;
    options.memtable_bytes = 1u << 20;  // flush manually
    options.auto_merge = false;
    options.amax_max_records = 64;  // many small leaves per component
    options.merge_pipeline = pipeline;
    return options;
  }

  static std::unique_ptr<Dataset> MustOpen(const DatasetOptions& options,
                                           BufferCache* cache) {
    auto ds = Dataset::Open(options, cache);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    return std::move(*ds);
  }

  /// Scan everything; records serialized to JSON keyed by id.
  static std::map<int64_t, std::string> ScanAll(Dataset* ds) {
    std::map<int64_t, std::string> out;
    auto cursor = ds->Scan(Projection::All());
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    while (true) {
      auto ok = (*cursor)->Next();
      EXPECT_TRUE(ok.ok()) << ok.status().ToString();
      if (!*ok) break;
      Value v;
      Status st = (*cursor)->Record(&v);
      EXPECT_TRUE(st.ok()) << st.ToString();
      const int64_t key = (*cursor)->key();
      EXPECT_EQ(out.count(key), 0u) << "duplicate key " << key;
      out[key] = ToJson(v);
    }
    return out;
  }

  /// Total entries (records + anti-matter) across all on-disk components,
  /// from the exact per-component metadata.
  static uint64_t TotalMetaEntries(Dataset* ds) {
    uint64_t total = 0;
    for (size_t i = 0; i < ds->component_count(); ++i) {
      total += ds->component(i).meta().entry_count;
    }
    return total;
  }

  std::string dir_;
  std::unique_ptr<BufferCache> cache_;
};

// One randomized op script applied identically to both pipelines:
// overlapping inserts, upserts, deletes of live keys in older components
// (anti-matter away from the oldest) and deletes of absent keys
// (anti-matter that only annihilates when the oldest is included).
struct Op {
  enum Kind { kInsert, kDelete, kFlush } kind;
  int64_t key = 0;
  uint64_t version = 0;
};

std::vector<Op> MakeScript(uint64_t seed, int64_t key_space, size_t ops) {
  Rng rng(seed);
  std::vector<Op> script;
  for (size_t i = 0; i < ops; ++i) {
    const uint64_t roll = rng.Uniform(100);
    if (roll < 8 && i > 0) {
      script.push_back({Op::kFlush, 0, 0});
    } else if (roll < 30) {
      // Deletes: half target the live range, half likely-absent keys.
      const int64_t key = roll < 19
                              ? rng.UniformRange(0, key_space - 1)
                              : rng.UniformRange(key_space, 2 * key_space);
      script.push_back({Op::kDelete, key, 0});
    } else {
      script.push_back(
          {Op::kInsert, rng.UniformRange(0, key_space - 1), i});
    }
  }
  script.push_back({Op::kFlush, 0, 0});
  return script;
}

void ApplyScript(Dataset* ds, const std::vector<Op>& script) {
  for (const Op& op : script) {
    switch (op.kind) {
      case Op::kInsert:
        ASSERT_TRUE(ds->Insert(MakeRecord(op.key, op.version)).ok());
        break;
      case Op::kDelete:
        ASSERT_TRUE(ds->Delete(op.key).ok());
        break;
      case Op::kFlush:
        ASSERT_TRUE(ds->Flush().ok());
        break;
    }
  }
}

TEST_P(MergeTest, RandomizedPipelineEquivalence) {
  for (uint64_t seed : {7u, 21u, 99u}) {
    auto run = MustOpen(
        BaseOptions("run_" + std::to_string(seed), MergePipeline::kRunLevel),
        cache_.get());
    auto ref = MustOpen(BaseOptions("ref_" + std::to_string(seed),
                                    MergePipeline::kRecordAtATime),
                        cache_.get());
    const auto script = MakeScript(seed, /*key_space=*/600, /*ops=*/900);
    ApplyScript(run.get(), script);
    ApplyScript(ref.get(), script);
    ASSERT_GE(run->component_count(), 2u) << "script produced no merge work";

    const auto before = ScanAll(run.get());
    ASSERT_TRUE(run->MergeAll().ok());
    ASSERT_TRUE(ref->MergeAll().ok());
    EXPECT_EQ(run->component_count(), 1u);

    const auto after_run = ScanAll(run.get());
    const auto after_ref = ScanAll(ref.get());
    // The merge must not change query results (the pre-merge scan is the
    // record-at-a-time reconciliation over the unmerged components)...
    EXPECT_EQ(before, after_run) << "seed " << seed;
    // ...and both pipelines must produce query-identical components.
    EXPECT_EQ(after_run, after_ref) << "seed " << seed;

    // MergeAll includes the oldest component: every anti-matter entry
    // annihilates, so the exact entry count equals the surviving records.
    EXPECT_EQ(run->component(0).meta().entry_count, after_run.size());
    EXPECT_EQ(ref->component(0).meta().entry_count, after_ref.size());

    const auto stats = run->stats();
    EXPECT_GT(stats.merge_records_in, 0u);
    EXPECT_EQ(stats.merge_records_out,
              run->component(0).meta().entry_count);
    if (IsColumnar(GetParam())) {
      EXPECT_GT(stats.merge_runs_copied + stats.merge_leaves_adopted, 0u);
    }
  }
}

TEST_P(MergeTest, DroppedRunsStraddlingLeafEdges) {
  // Component 1: keys 0..799 (many leaves). Component 2: updates 300..579
  // and deletes 580..699 — both stretches cross several leaf boundaries,
  // so the survivor plan drops runs that start and end mid-leaf.
  auto run = MustOpen(BaseOptions("run", MergePipeline::kRunLevel),
                      cache_.get());
  auto ref = MustOpen(BaseOptions("ref", MergePipeline::kRecordAtATime),
                      cache_.get());
  for (Dataset* ds : {run.get(), ref.get()}) {
    for (int64_t i = 0; i < 800; ++i) {
      ASSERT_TRUE(ds->Insert(MakeRecord(i, 1)).ok());
    }
    ASSERT_TRUE(ds->Flush().ok());
    for (int64_t i = 300; i < 580; ++i) {
      ASSERT_TRUE(ds->Insert(MakeRecord(i, 2)).ok());
    }
    for (int64_t i = 580; i < 700; ++i) {
      ASSERT_TRUE(ds->Delete(i).ok());
    }
    ASSERT_TRUE(ds->Flush().ok());
    ASSERT_EQ(ds->component_count(), 2u);
  }
  const auto before = ScanAll(run.get());
  EXPECT_EQ(before.size(), 800u - 120u);
  ASSERT_TRUE(run->MergeAll().ok());
  ASSERT_TRUE(ref->MergeAll().ok());
  const auto after_run = ScanAll(run.get());
  EXPECT_EQ(before, after_run);
  EXPECT_EQ(after_run, ScanAll(ref.get()));
  EXPECT_EQ(run->component(0).meta().entry_count, 680u);
  EXPECT_EQ(ref->component(0).meta().entry_count, 680u);
}

TEST_P(MergeTest, PartialMergePreservesAntiMatter) {
  // Oldest component: keys 0..199. Middle: keys 200..299. Newest: deletes
  // of 0..59 (anti-matter for records that live in the *oldest*). A merge
  // of the two newest components must preserve the anti-matter entries;
  // the final full merge annihilates them.
  auto options = BaseOptions("ds", MergePipeline::kRunLevel);
  options.max_components = 2;  // policy: over the limit, merge two newest
  options.size_ratio = 100.0;  // keep the size rule out of the way
  auto ds = MustOpen(options, cache_.get());
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i, 1)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  for (int64_t i = 200; i < 300; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i, 1)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  for (int64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(ds->Delete(i).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  ASSERT_EQ(ds->component_count(), 3u);

  const auto before = ScanAll(ds.get());
  EXPECT_EQ(before.size(), 240u);

  ASSERT_TRUE(ds->MaybeMerge().ok());
  ASSERT_EQ(ds->component_count(), 2u);
  // Newest merged component = 100 records + 60 preserved anti-matter.
  EXPECT_EQ(ds->component(0).meta().entry_count, 160u);
  EXPECT_EQ(before, ScanAll(ds.get()));

  ASSERT_TRUE(ds->MergeAll().ok());
  ASSERT_EQ(ds->component_count(), 1u);
  EXPECT_EQ(ds->component(0).meta().entry_count, 240u);
  EXPECT_EQ(before, ScanAll(ds.get()));
}

TEST_P(MergeTest, AdoptionOnDisjointComponents) {
  // Append-style ingest: each component covers a disjoint key range, so
  // the survivor plan is a handful of runs and (for columnar layouts with
  // matching settings) most leaves should be adopted undecoded.
  auto ds = MustOpen(BaseOptions("ds", MergePipeline::kRunLevel),
                     cache_.get());
  constexpr int64_t kPerComponent = 400;
  for (int64_t c = 0; c < 4; ++c) {
    for (int64_t i = 0; i < kPerComponent; ++i) {
      ASSERT_TRUE(
          ds->Insert(MakeRecord(c * kPerComponent + i, 1)).ok());
    }
    ASSERT_TRUE(ds->Flush().ok());
  }
  ASSERT_EQ(ds->component_count(), 4u);
  const auto before = ScanAll(ds.get());
  ASSERT_TRUE(ds->MergeAll().ok());
  EXPECT_EQ(before, ScanAll(ds.get()));
  EXPECT_EQ(ds->component(0).meta().entry_count, 4u * kPerComponent);
  const auto stats = ds->stats();
  EXPECT_EQ(stats.merge_records_in, 4u * kPerComponent);
  EXPECT_EQ(stats.merge_records_out, 4u * kPerComponent);
  if (IsColumnar(GetParam())) {
    // Disjoint inputs: every full input leaf is spliced through whole.
    EXPECT_GT(stats.merge_leaves_adopted, 0u);
  }
}

TEST_P(MergeTest, FullDeletionMergesToEmpty) {
  auto run = MustOpen(BaseOptions("run", MergePipeline::kRunLevel),
                      cache_.get());
  auto ref = MustOpen(BaseOptions("ref", MergePipeline::kRecordAtATime),
                      cache_.get());
  for (Dataset* ds : {run.get(), ref.get()}) {
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(ds->Insert(MakeRecord(i, 1)).ok());
    }
    ASSERT_TRUE(ds->Flush().ok());
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(ds->Delete(i).ok());
    }
    ASSERT_TRUE(ds->Flush().ok());
    ASSERT_TRUE(ds->MergeAll().ok());
    EXPECT_EQ(ds->component(0).meta().entry_count, 0u);
    EXPECT_TRUE(ScanAll(ds).empty());
  }
}

TEST_P(MergeTest, EntryCountSurvivesReopen) {
  auto options = BaseOptions("ds", MergePipeline::kRunLevel);
  uint64_t expected = 0;
  {
    auto ds = MustOpen(options, cache_.get());
    for (int64_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(ds->Insert(MakeRecord(i, 1)).ok());
      if (i % 200 == 199) {
        ASSERT_TRUE(ds->Flush().ok());
      }
    }
    for (int64_t i = 100; i < 150; ++i) {
      ASSERT_TRUE(ds->Delete(i).ok());
    }
    ASSERT_TRUE(ds->Flush().ok());
    ASSERT_TRUE(ds->MergeAll().ok());
    expected = ds->component(0).meta().entry_count;
    EXPECT_EQ(expected, 450u);
  }
  auto ds = MustOpen(options, cache_.get());
  EXPECT_EQ(TotalMetaEntries(ds.get()), expected);
  EXPECT_EQ(ScanAll(ds.get()).size(), 450u);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, MergeTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

}  // namespace
}  // namespace lsmcol
