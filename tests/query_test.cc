// Query engine tests: expression semantics, and equivalence of the
// interpreted and compiled engines across all four layouts on the paper's
// query shapes (COUNT(*), filters, group-by, unnest, quantifiers, union-
// typed data).

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <set>

#include "src/common/rng.h"
#include "src/json/parser.h"
#include "src/query/engine.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

TEST(ExprTest, CompareMismatchedTypesYieldsMissing) {
  // The paper's example: 10 > "ten" → NULL (§5).
  EvalContext ctx;
  Value v;
  auto e = Expr::Compare(Expr::CmpOp::kGt, Expr::Int(10), Expr::Str("ten"));
  ASSERT_TRUE(e->Eval(&ctx, &v).ok());
  EXPECT_TRUE(v.is_missing());
  EXPECT_FALSE(IsTrue(v));
}

TEST(ExprTest, NumericComparisonsAcrossIntAndDouble) {
  EvalContext ctx;
  Value v;
  auto lt = Expr::Compare(Expr::CmpOp::kLt, Expr::Int(3),
                          Expr::Literal(Value::Double(3.5)));
  ASSERT_TRUE(lt->Eval(&ctx, &v).ok());
  EXPECT_TRUE(v.bool_value());
  auto eq = Expr::Compare(Expr::CmpOp::kEq, Expr::Int(4),
                          Expr::Literal(Value::Double(4.0)));
  ASSERT_TRUE(eq->Eval(&ctx, &v).ok());
  EXPECT_TRUE(v.bool_value());
}

TEST(ExprTest, FieldPathMapsOverArrays) {
  auto record = ParseJson(
      R"({"addr":[{"spec":{"c":"US"}},{"spec":{"c":"DE"}}]})");
  ValueFieldSource source(&*record);
  EvalContext ctx;
  ctx.record = &source;
  Value v;
  ASSERT_TRUE(Expr::Field({"addr", "spec", "c"})->Eval(&ctx, &v).ok());
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array().size(), 2u);
  EXPECT_EQ(v.array()[0].string_value(), "US");
  EXPECT_EQ(v.array()[1].string_value(), "DE");
}

TEST(ExprTest, ArrayFunctions) {
  auto record = ParseJson(R"({"xs":["b","a","b","c"]})");
  ValueFieldSource source(&*record);
  EvalContext ctx;
  ctx.record = &source;
  Value v;
  ASSERT_TRUE(
      Expr::ArrayDistinct(Expr::Field({"xs"}))->Eval(&ctx, &v).ok());
  EXPECT_EQ(v.array().size(), 3u);
  ASSERT_TRUE(Expr::ArrayCount(Expr::Field({"xs"}))->Eval(&ctx, &v).ok());
  EXPECT_EQ(v.int_value(), 4);
  ASSERT_TRUE(Expr::ArrayContains(Expr::Field({"xs"}), Expr::Str("c"))
                  ->Eval(&ctx, &v)
                  .ok());
  EXPECT_TRUE(v.bool_value());
  ASSERT_TRUE(
      Expr::ArrayPairs(Expr::ArrayDistinct(Expr::Field({"xs"})))
          ->Eval(&ctx, &v)
          .ok());
  EXPECT_EQ(v.array().size(), 3u);  // C(3,2)
  // Pairs are canonically ordered.
  EXPECT_EQ(v.array()[0].array()[0].string_value(), "a");
}

TEST(ExprTest, SomeSatisfies) {
  auto record = ParseJson(R"({"tags":[{"t":"Jobs"},{"t":"news"}]})");
  ValueFieldSource source(&*record);
  EvalContext ctx;
  ctx.record = &source;
  Value v;
  auto some = Expr::Some(
      "ht", Expr::Field({"tags"}),
      Expr::Compare(Expr::CmpOp::kEq, Expr::Lower(Expr::VarPath("ht", {"t"})),
                    Expr::Str("jobs")));
  ASSERT_TRUE(some->Eval(&ctx, &v).ok());
  EXPECT_TRUE(v.bool_value());
}

TEST(ExprTest, BooleanConnectivesShortCircuit) {
  EvalContext ctx;
  Value v;
  auto t = Expr::Literal(Value::Bool(true));
  auto f = Expr::Literal(Value::Bool(false));
  ASSERT_TRUE(Expr::And(f, Expr::Field({"never"}))->Eval(&ctx, &v).ok());
  EXPECT_FALSE(v.bool_value());
  ASSERT_TRUE(Expr::Or(t, Expr::Field({"never"}))->Eval(&ctx, &v).ok());
  EXPECT_TRUE(v.bool_value());
  ASSERT_TRUE(Expr::Not(t)->Eval(&ctx, &v).ok());
  EXPECT_FALSE(v.bool_value());
}

TEST(ExprTest, ArithmeticAndDivByZero) {
  EvalContext ctx;
  Value v;
  ASSERT_TRUE(Expr::Arith(Expr::ArithOp::kAdd, Expr::Int(2), Expr::Int(3))
                  ->Eval(&ctx, &v)
                  .ok());
  EXPECT_EQ(v.int_value(), 5);
  ASSERT_TRUE(Expr::Arith(Expr::ArithOp::kDiv, Expr::Int(1), Expr::Int(0))
                  ->Eval(&ctx, &v)
                  .ok());
  EXPECT_TRUE(v.is_missing());
}

// ------------------------------------------------ engine equivalence ---

class QueryEngineTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/query_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    cache_ = std::make_unique<BufferCache>(1024 * kPage, kPage);
    DatasetOptions options;
    options.layout = GetParam();
    options.dir = dir_;
    options.page_size = kPage;
    options.memtable_bytes = 64 * 1024;
    options.amax_max_records = 300;
    auto ds = Dataset::Create(options, cache_.get());
    ASSERT_TRUE(ds.ok());
    dataset_ = std::move(*ds);
    LoadGamers();
  }
  void TearDown() override {
    dataset_.reset();
    std::filesystem::remove_all(dir_);
  }

  void LoadGamers() {
    Rng rng(42);
    const char* titles[] = {"NBA", "NFL", "FIFA", "PES", "Zelda"};
    const char* consoles[] = {"PS4", "PC", "XBOX", "Switch"};
    for (int64_t i = 0; i < 800; ++i) {
      Value v = Value::MakeObject();
      v.Set("id", Value::Int(i));
      if (rng.Bernoulli(0.9)) {
        Value name = Value::MakeObject();
        name.Set("first", Value::String(rng.Word(3, 8)));
        if (rng.Bernoulli(0.8)) {
          name.Set("last", Value::String(rng.Word(3, 8)));
        }
        v.Set("name", std::move(name));
      }
      v.Set("age", Value::Int(static_cast<int64_t>(18 + rng.Uniform(50))));
      v.Set("score", Value::Double(rng.NextDouble() * 100));
      Value games = Value::MakeArray();
      for (uint64_t g = 0; g < rng.Uniform(4); ++g) {
        Value game = Value::MakeObject();
        game.Set("title", Value::String(titles[rng.Uniform(5)]));
        Value cs = Value::MakeArray();
        for (uint64_t c = 0; c < rng.Uniform(3); ++c) {
          cs.Push(Value::String(consoles[rng.Uniform(4)]));
        }
        game.Set("consoles", std::move(cs));
        games.Push(std::move(game));
      }
      v.Set("games", std::move(games));
      ASSERT_TRUE(dataset_->Insert(v).ok());
    }
    ASSERT_TRUE(dataset_->Flush().ok());
  }

  // Run both engines and require identical results; return the rows.
  QueryResult RunBoth(const QueryPlan& plan) {
    auto interpreted = RunInterpreted(dataset_.get(), plan);
    EXPECT_TRUE(interpreted.ok()) << interpreted.status().ToString();
    auto compiled = RunCompiled(dataset_.get(), plan);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ(interpreted->rows.size(), compiled->rows.size());
    EXPECT_EQ(interpreted->pipeline_tuples, compiled->pipeline_tuples);
    for (size_t i = 0;
         i < std::min(interpreted->rows.size(), compiled->rows.size()); ++i) {
      EXPECT_EQ(interpreted->rows[i].size(), compiled->rows[i].size());
      if (interpreted->rows[i].size() != compiled->rows[i].size()) continue;
      for (size_t j = 0; j < interpreted->rows[i].size(); ++j) {
        EXPECT_TRUE(
            ValueEquivalent(interpreted->rows[i][j], compiled->rows[i][j]))
            << "row " << i << " col " << j << ": "
            << ToJson(interpreted->rows[i][j]) << " vs "
            << ToJson(compiled->rows[i][j]);
      }
    }
    return std::move(*compiled);
  }

  std::string dir_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<Dataset> dataset_;
};

TEST_P(QueryEngineTest, CountStar) {
  QueryPlan plan;
  plan.aggregates.push_back(AggSpec::CountStar());
  auto result = RunBoth(plan);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].int_value(), 800);
}

TEST_P(QueryEngineTest, FilterCount) {
  QueryPlan plan;
  plan.pre_filter =
      Expr::Compare(Expr::CmpOp::kGe, Expr::Field({"age"}), Expr::Int(40));
  plan.aggregates.push_back(AggSpec::CountStar());
  auto result = RunBoth(plan);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GT(result.rows[0][0].int_value(), 100);
  EXPECT_LT(result.rows[0][0].int_value(), 700);
}

TEST_P(QueryEngineTest, GlobalMinMax) {
  QueryPlan plan;
  plan.aggregates.push_back(AggSpec::Max(Expr::Field({"score"})));
  plan.aggregates.push_back(AggSpec::Min(Expr::Field({"score"})));
  auto result = RunBoth(plan);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GT(result.rows[0][0].as_double(), result.rows[0][1].as_double());
}

TEST_P(QueryEngineTest, GroupByWithOrderAndLimit) {
  // Top-3 ages by count.
  QueryPlan plan;
  plan.group_keys.push_back(Expr::Field({"age"}));
  plan.aggregates.push_back(AggSpec::CountStar());
  plan.order_by = 1;
  plan.order_desc = true;
  plan.limit = 3;
  auto result = RunBoth(plan);
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_GE(result.rows[0][1].int_value(), result.rows[1][1].int_value());
  EXPECT_GE(result.rows[1][1].int_value(), result.rows[2][1].int_value());
}

TEST_P(QueryEngineTest, UnnestGroupBy) {
  // Figure 11's query: unnest games, count per title.
  QueryPlan plan;
  plan.unnests.push_back({Expr::Field({"games"}), "g"});
  plan.group_keys.push_back(Expr::VarPath("g", {"title"}));
  plan.aggregates.push_back(AggSpec::CountStar());
  plan.order_by = 1;
  plan.limit = 10;
  auto result = RunBoth(plan);
  EXPECT_GE(result.rows.size(), 4u);
  uint64_t total = 0;
  for (const auto& row : result.rows) {
    total += static_cast<uint64_t>(row[1].int_value());
  }
  EXPECT_EQ(total, result.pipeline_tuples);
}

TEST_P(QueryEngineTest, DoubleUnnest) {
  // Count console occurrences across all games.
  QueryPlan plan;
  plan.unnests.push_back({Expr::Field({"games"}), "g"});
  plan.unnests.push_back({Expr::VarPath("g", {"consoles"}), "c"});
  plan.group_keys.push_back(Expr::Var("c"));
  plan.aggregates.push_back(AggSpec::CountStar());
  plan.order_by = 1;
  auto result = RunBoth(plan);
  EXPECT_EQ(result.rows.size(), 4u);  // four console names
}

TEST_P(QueryEngineTest, SomeSatisfiesFilter) {
  QueryPlan plan;
  plan.pre_filter = Expr::Some(
      "g", Expr::Field({"games"}),
      Expr::Compare(Expr::CmpOp::kEq, Expr::Lower(Expr::VarPath("g", {"title"})),
                    Expr::Str("fifa")));
  plan.aggregates.push_back(AggSpec::CountStar());
  auto result = RunBoth(plan);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GT(result.rows[0][0].int_value(), 0);
  EXPECT_LT(result.rows[0][0].int_value(), 800);
}

TEST_P(QueryEngineTest, ProjectionQueryNoAggregates) {
  QueryPlan plan;
  plan.pre_filter =
      Expr::Compare(Expr::CmpOp::kLt, Expr::Field({"id"}), Expr::Int(5));
  plan.projections.push_back(Expr::Field({"id"}));
  plan.projections.push_back(Expr::Field({"name", "first"}));
  plan.order_by = 0;
  plan.order_desc = false;
  auto result = RunBoth(plan);
  ASSERT_EQ(result.rows.size(), 5u);
  EXPECT_EQ(result.rows[0][0].int_value(), 0);
  EXPECT_EQ(result.rows[4][0].int_value(), 4);
}

TEST_P(QueryEngineTest, SumAggregate) {
  QueryPlan plan;
  plan.group_keys.push_back(Expr::Field({"age"}));
  plan.aggregates.push_back(AggSpec::Sum(Expr::Field({"score"})));
  plan.aggregates.push_back(AggSpec::Count(Expr::Field({"score"})));
  auto result = RunBoth(plan);
  EXPECT_GT(result.rows.size(), 10u);
}

TEST_P(QueryEngineTest, UnionSiblingColumnsStayFreshAcrossRecords) {
  // Regression: with a narrow projection, Path() may touch columns outside
  // the projection (union siblings); their cached per-record parses must
  // be invalidated on every cursor advance.
  QueryPlan plan;
  plan.pre_filter = Expr::Not(
      Expr::IsMissing(Expr::Field({"name", "first"})));
  plan.projections.push_back(Expr::Field({"id"}));
  plan.projections.push_back(Expr::Field({"name", "first"}));
  auto result = RunBoth(plan);
  EXPECT_GT(result.rows.size(), 500u);  // ~90% of 800 records have names
  for (const auto& row : result.rows) {
    EXPECT_TRUE(row[1].is_string());
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, QueryEngineTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// Heterogeneous (union-typed) data through both engines, as in wos (§6.4.4).
class HeteroQueryTest : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(HeteroQueryTest, UnionTypedFieldQueries) {
  const std::string dir = testing::TempDir() + "/hetero_" +
                          std::string(LayoutKindName(GetParam()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  BufferCache cache(256 * kPage, kPage);
  DatasetOptions options;
  options.layout = GetParam();
  options.dir = dir;
  options.page_size = kPage;
  auto ds = Dataset::Create(options, &cache);
  ASSERT_TRUE(ds.ok());
  // "address" is an object for single-author records, an array of objects
  // otherwise (the wos pattern).
  for (int64_t i = 0; i < 200; ++i) {
    std::string json = "{\"id\": " + std::to_string(i);
    if (i % 3 == 0) {
      json += R"(, "address": {"country": "US"}})";
    } else {
      json += R"(, "address": [{"country": "US"}, {"country": "DE"}]})";
    }
    ASSERT_TRUE((*ds)->InsertJson(json).ok());
  }
  ASSERT_TRUE((*ds)->Flush().ok());

  // Count records whose address is an array (multi-author).
  QueryPlan plan;
  plan.pre_filter = Expr::IsArray(Expr::Field({"address"}));
  plan.aggregates.push_back(AggSpec::CountStar());
  auto interpreted = RunInterpreted(ds->get(), plan);
  auto compiled = RunCompiled(ds->get(), plan);
  ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(interpreted->rows[0][0].int_value(), 133);
  EXPECT_EQ(compiled->rows[0][0].int_value(), 133);

  // Group countries regardless of the container type (path maps arrays).
  QueryPlan group;
  group.unnests.push_back(
      {Expr::ArrayDistinct(Expr::Field({"address", "country"})), "c"});
  group.group_keys.push_back(Expr::Var("c"));
  group.aggregates.push_back(AggSpec::CountStar());
  group.order_by = 1;
  // For the object case address.country is a string, not an array; wrap it
  // the SQL++ way: filter arrays only.
  group.pre_filter = Expr::IsArray(Expr::Field({"address"}));
  auto r1 = RunInterpreted(ds->get(), group);
  auto r2 = RunCompiled(ds->get(), group);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->rows.size(), 2u);
  EXPECT_EQ(r2->rows.size(), 2u);
  EXPECT_EQ(r1->rows[0][1].int_value(), 133);  // both US and DE appear 133x
  ds->reset();
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, HeteroQueryTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// ------------------------------------------------ group-key encoding ---

TEST_P(QueryEngineTest, GroupKeysWithSeparatorBytesNeverMerge) {
  // Regression for the aggregator's group-key encoding: with naive
  // separator-joined keys, ("a<sep>", "b") and ("a", "<sep>b") collide.
  // Length-prefixed encoding must keep every combination distinct,
  // including across a string/int type boundary ("5" vs 5).
  const std::string sep(1, '\x1f');
  struct KeyPair {
    Value k1, k2;
  };
  std::vector<KeyPair> pairs;
  pairs.push_back({Value::String("a" + sep), Value::String("b")});
  pairs.push_back({Value::String("a"), Value::String(sep + "b")});
  pairs.push_back({Value::String("a" + sep + "b"), Value::String("")});
  pairs.push_back({Value::String("5"), Value::String("x")});
  pairs.push_back({Value::Int(5), Value::String("x")});
  // A throwaway dataset: the group keys come from the records themselves.
  const std::string dir = testing::TempDir() + "/groupkeys";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  BufferCache cache(256 * kPage, kPage);
  DatasetOptions options;
  options.layout = GetParam();
  options.dir = dir;
  options.page_size = kPage;
  auto ds = Dataset::Create(options, &cache);
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < pairs.size(); ++i) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(static_cast<int64_t>(i)));
    v.Set("k1", pairs[i].k1);
    v.Set("k2", pairs[i].k2);
    ASSERT_TRUE((*ds)->Insert(v).ok());
  }
  ASSERT_TRUE((*ds)->Flush().ok());
  QueryPlan plan;
  plan.group_keys.push_back(Expr::Field({"k1"}));
  plan.group_keys.push_back(Expr::Field({"k2"}));
  plan.aggregates.push_back(AggSpec::CountStar());
  for (bool compiled : {false, true}) {
    auto result = RunQuery(ds->get(), plan, compiled);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows.size(), pairs.size())
        << "distinct key tuples merged (compiled=" << compiled << ")";
    for (const auto& row : result->rows) {
      EXPECT_EQ(row[2].int_value(), 1);
    }
  }
  ds->reset();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------ zone-map pushdown ---

TEST(ScanPredicateTest, NaNValuesFollowEngineComparisonQuirks) {
  // CompareValues returns 0 for any NaN operand, so NaN passes inclusive
  // bounds (>=, <=, ==) and fails strict ones (<, >). Pushed predicates
  // must reproduce that, not apply IEEE semantics.
  ColumnInfo info;
  info.id = 1;
  info.type = AtomicType::kDouble;
  info.max_def = 1;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ScanPredicate strict;
  strict.path = {"x"};
  strict.lower = Value::Double(10.0);
  strict.lower_inclusive = false;  // x > 10
  EXPECT_FALSE(CompileScanPredicate(strict, info).MatchesDouble(nan));
  ScanPredicate inclusive;
  inclusive.path = {"x"};
  inclusive.lower = Value::Double(10.0);  // x >= 10
  EXPECT_TRUE(CompileScanPredicate(inclusive, info).MatchesDouble(nan));
  ScanPredicate eq;
  eq.path = {"x"};
  eq.lower = Value::Double(10.0);
  eq.upper = Value::Double(10.0);  // x == 10: NaN "equals" via c == 0
  EXPECT_TRUE(CompileScanPredicate(eq, info).MatchesDouble(nan));

  // A chunk containing NaN widens its zone to everything, so zone maps
  // can never veto a leaf the engine would match through the quirk.
  ColumnChunkWriter writer(info);
  writer.AddDouble(5.0);
  writer.AddDouble(nan);
  writer.AddDouble(7.0);
  EXPECT_EQ(writer.min_double(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(writer.max_double(), std::numeric_limits<double>::infinity());
}

TEST(ScanPredicateTest, HugeIntLiteralsMatchEngineDoubleSemantics) {
  // The engine compares ALL numerics through as_double (CompareValues),
  // so at |v| >= 2^53 distinct ints can compare equal. Compiled
  // predicates must reproduce that, not "fix" it.
  ColumnInfo info;
  info.id = 1;
  info.type = AtomicType::kInt64;
  info.max_def = 1;
  const int64_t big = int64_t{1} << 53;
  ScanPredicate eq;
  eq.path = {"x"};
  eq.lower = Value::Int(big + 1);
  eq.upper = Value::Int(big + 1);
  TypedPredicate typed = CompileScanPredicate(eq, info);
  // as_double(2^53) == as_double(2^53 + 1): the engine would keep the
  // record, so the pushed predicate must too.
  EXPECT_TRUE(typed.MatchesInt(big));
  // Small literals stay in the exact int domain.
  ScanPredicate small;
  small.path = {"x"};
  small.lower = Value::Int(5);
  small.upper = Value::Int(5);
  TypedPredicate small_typed = CompileScanPredicate(small, info);
  EXPECT_TRUE(small_typed.MatchesInt(5));
  EXPECT_FALSE(small_typed.MatchesInt(6));
}

/// Columnar layouts only: a monotone timestamp column gives every leaf a
/// tight zone, so selective range filters should skip pages (AMAX) and
/// decode work, without ever changing results.
class ZoneMapTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/zonemap_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    cache_ = std::make_unique<BufferCache>(4096 * kPage, kPage);
    DatasetOptions options;
    options.layout = GetParam();
    options.dir = dir_;
    options.page_size = kPage;
    options.memtable_bytes = 256 * 1024;  // several flushes
    options.amax_max_records = 500;
    auto ds = Dataset::Create(options, cache_.get());
    ASSERT_TRUE(ds.ok());
    dataset_ = std::move(*ds);
  }
  void TearDown() override {
    dataset_.reset();
    std::filesystem::remove_all(dir_);
  }

  void LoadMonotone(int64_t n) {
    Rng rng(5);
    for (int64_t i = 0; i < n; ++i) {
      Value v = Value::MakeObject();
      v.Set("id", Value::Int(i));
      v.Set("ts", Value::Int(i * 10));  // monotone, even multiples of 10
      v.Set("tag", Value::String("tag_" + std::to_string(rng.Uniform(50))));
      v.Set("payload", Value::String(rng.Word(20, 40)));
      ASSERT_TRUE(dataset_->Insert(v).ok());
    }
    ASSERT_TRUE(dataset_->Flush().ok());
  }

  // Cold-run `plan`, returning pages_read.
  uint64_t ColdPages(const QueryPlan& plan, QueryResult* result) {
    cache_->Clear();
    cache_->ResetStats();
    auto r = RunCompiled(dataset_.get(), plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (result != nullptr) *result = std::move(*r);
    return cache_->stats().pages_read;
  }

  std::string dir_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<Dataset> dataset_;
};

TEST_P(ZoneMapTest, SelectiveRangeReadsFewerPagesAndSameRows) {
  LoadMonotone(4000);
  QueryPlan plan;
  plan.pre_filter = Expr::And(
      Expr::Compare(Expr::CmpOp::kGe, Expr::Field({"ts"}), Expr::Int(10000)),
      Expr::Compare(Expr::CmpOp::kLt, Expr::Field({"ts"}), Expr::Int(10500)));
  plan.projections.push_back(Expr::Field({"id"}));
  plan.projections.push_back(Expr::Field({"tag"}));

  QueryResult pushed;
  const uint64_t pages_pushed = ColdPages(plan, &pushed);
  QueryPlan off = plan;
  off.pushdown = false;
  QueryResult unpushed;
  const uint64_t pages_unpushed = ColdPages(off, &unpushed);

  EXPECT_EQ(pushed.rows.size(), 50u);
  ASSERT_EQ(pushed.rows.size(), unpushed.rows.size());
  for (size_t i = 0; i < pushed.rows.size(); ++i) {
    EXPECT_TRUE(ValueEquivalent(pushed.rows[i][0], unpushed.rows[i][0]));
    EXPECT_TRUE(ValueEquivalent(pushed.rows[i][1], unpushed.rows[i][1]));
  }
  // AMAX skips untouched megapages outright; zone stats cost nothing.
  if (GetParam() == LayoutKind::kAmax) {
    EXPECT_LT(pages_pushed, pages_unpushed);
  } else {
    EXPECT_LE(pages_pushed, pages_unpushed);
  }
  // The interpreted engine agrees.
  auto interpreted = RunInterpreted(dataset_.get(), plan);
  ASSERT_TRUE(interpreted.ok());
  EXPECT_EQ(interpreted->rows.size(), pushed.rows.size());
}

TEST_P(ZoneMapTest, OutOfRangePredicateReturnsZeroRows) {
  LoadMonotone(2000);
  QueryPlan plan;
  plan.pre_filter = Expr::Compare(Expr::CmpOp::kGt, Expr::Field({"ts"}),
                                  Expr::Int(1000 * 1000));
  plan.aggregates.push_back(AggSpec::CountStar());
  QueryResult result;
  const uint64_t pages = ColdPages(plan, &result);
  // A global aggregate over zero tuples yields no groups (both engines).
  EXPECT_EQ(result.rows.size(), 0u);
  EXPECT_EQ(result.pipeline_tuples, 0u);
  QueryPlan off = plan;
  off.pushdown = false;
  QueryResult unpushed;
  const uint64_t pages_off = ColdPages(off, &unpushed);
  EXPECT_EQ(unpushed.rows.size(), 0u);
  if (GetParam() == LayoutKind::kAmax) {
    EXPECT_LT(pages, pages_off);
  }
}

TEST_P(ZoneMapTest, FalsePositiveZonesStillFilterExactly) {
  LoadMonotone(2000);
  // ts values are multiples of 10, so ts == 10005 falls inside the zone
  // hull of some leaf (false positive) but matches no record.
  QueryPlan plan;
  plan.pre_filter = Expr::Compare(Expr::CmpOp::kEq, Expr::Field({"ts"}),
                                  Expr::Int(10005));
  plan.aggregates.push_back(AggSpec::CountStar());
  QueryResult result;
  ColdPages(plan, &result);
  EXPECT_EQ(result.pipeline_tuples, 0u);
  // And a double-literal bound on the int column rounds correctly.
  QueryPlan frac;
  frac.pre_filter = Expr::And(
      Expr::Compare(Expr::CmpOp::kGt, Expr::Field({"ts"}),
                    Expr::Literal(Value::Double(9994.5))),
      Expr::Compare(Expr::CmpOp::kLe, Expr::Field({"ts"}),
                    Expr::Literal(Value::Double(10010.0))));
  frac.aggregates.push_back(AggSpec::CountStar());
  ColdPages(frac, &result);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].int_value(), 2);  // ts = 10000, 10010
}

TEST_P(ZoneMapTest, ShadowedAndDeletedRecordsStayInvisible) {
  // A newer component's non-matching version must shadow an older
  // matching one even when pushdown skips the newer record — and an
  // anti-matter entry must keep a deleted (matching) record dead.
  LoadMonotone(1500);
  // Update: key 42's ts moves out of the filter range.
  Value updated = Value::MakeObject();
  updated.Set("id", Value::Int(42));
  updated.Set("ts", Value::Int(9999999));
  updated.Set("tag", Value::String("updated"));
  ASSERT_TRUE(dataset_->Insert(updated).ok());
  // Delete: key 43 (its old ts 430 matched the filter below).
  ASSERT_TRUE(dataset_->Delete(43).ok());
  ASSERT_TRUE(dataset_->Flush().ok());

  QueryPlan plan;
  plan.pre_filter = Expr::Compare(Expr::CmpOp::kLt, Expr::Field({"ts"}),
                                  Expr::Int(1000));  // keys 0..99 originally
  plan.projections.push_back(Expr::Field({"id"}));
  QueryResult result;
  ColdPages(plan, &result);
  std::set<int64_t> ids;
  for (const auto& row : result.rows) ids.insert(row[0].int_value());
  EXPECT_EQ(ids.size(), 98u);  // 100 minus updated(42) minus deleted(43)
  EXPECT_EQ(ids.count(42), 0u);
  EXPECT_EQ(ids.count(43), 0u);
  // Pushdown off agrees.
  QueryPlan off = plan;
  off.pushdown = false;
  QueryResult unpushed;
  ColdPages(off, &unpushed);
  EXPECT_EQ(unpushed.rows.size(), result.rows.size());
}

TEST_P(ZoneMapTest, StringEqualityUsesZones) {
  // String zone prefixes: an impossible tag skips everything without
  // losing the possible ones.
  LoadMonotone(1000);
  QueryPlan plan;
  plan.pre_filter = Expr::Compare(Expr::CmpOp::kEq, Expr::Field({"tag"}),
                                  Expr::Str("zzz_not_a_tag"));
  plan.aggregates.push_back(AggSpec::CountStar());
  QueryResult result;
  ColdPages(plan, &result);
  EXPECT_EQ(result.pipeline_tuples, 0u);

  QueryPlan hit;
  hit.pre_filter = Expr::Compare(Expr::CmpOp::kEq, Expr::Field({"tag"}),
                                 Expr::Str("tag_7"));
  hit.aggregates.push_back(AggSpec::CountStar());
  QueryResult on_result;
  ColdPages(hit, &on_result);
  QueryPlan hit_off = hit;
  hit_off.pushdown = false;
  QueryResult off_result;
  ColdPages(hit_off, &off_result);
  EXPECT_GT(on_result.rows[0][0].int_value(), 0);
  EXPECT_EQ(on_result.rows[0][0].int_value(), off_result.rows[0][0].int_value());
}

TEST_P(ZoneMapTest, MissingPathPredicateShortCircuitsComponent) {
  LoadMonotone(500);
  QueryPlan plan;
  plan.pre_filter = Expr::Compare(Expr::CmpOp::kGt,
                                  Expr::Field({"no", "such", "field"}),
                                  Expr::Int(0));
  plan.aggregates.push_back(AggSpec::CountStar());
  QueryResult result;
  ColdPages(plan, &result);
  EXPECT_EQ(result.pipeline_tuples, 0u);
}

INSTANTIATE_TEST_SUITE_P(ColumnarLayouts, ZoneMapTest,
                         ::testing::Values(LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

}  // namespace
}  // namespace lsmcol
