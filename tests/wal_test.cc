// Crash-recovery tests for the write-ahead log: kill-point truncations at
// every byte offset (torn tail, mid-record, mid-group), group-commit
// durability, segment lifecycle (rotation, floor advance, stale-segment
// sweep), and the durability bugfixes that rode along (transient flush
// errors must surface once and then recover).
//
// "Crash" here = copying the dataset directory while (or after) a live
// dataset wrote to it, optionally cutting the WAL at an arbitrary byte
// offset, then recovering from the copy. Every acknowledged write must
// survive; a cut may only drop frames that were never fully on disk.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/json/parser.h"
#include "src/storage/buffer_cache.h"
#include "src/storage/fault_injection_fs.h"
#include "src/storage/file.h"
#include "src/storage/wal.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

void CopyDir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive);
}

size_t CountWalFiles(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".wal") ++n;
  }
  return n;
}

class WalTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/wal_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    cache_ = std::make_unique<BufferCache>(512 * kPage, kPage);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Standalone dataset options rooted at `dir` with per-write WAL sync
  /// (group commit off: every acknowledged insert is an fsync-durable
  /// frame, so file sizes between inserts are exact kill points).
  DatasetOptions Options(const std::string& dir) {
    DatasetOptions options;
    options.layout = GetParam();
    options.dir = dir;
    options.name = "docs";
    options.page_size = kPage;
    options.memtable_bytes = 1u << 20;  // no implicit flushes
    options.amax_max_records = 200;
    options.wal.enabled = true;
    options.wal.group_commit = false;
    return options;
  }

  std::unique_ptr<Dataset> OpenDataset(const DatasetOptions& options) {
    auto dataset = Dataset::Open(options, cache_.get());
    EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
    return std::move(*dataset);
  }

  static Value MakeRecord(int64_t id) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(id));
    v.Set("name", Value::String("user_" + std::to_string(id)));
    v.Set("score", Value::Double(static_cast<double>(id) * 0.25));
    return v;
  }

  static std::map<int64_t, std::string> ScanAll(const Snapshot& snapshot) {
    std::map<int64_t, std::string> out;
    auto cursor = snapshot.Scan(Projection::All());
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    while (true) {
      auto ok = (*cursor)->Next();
      EXPECT_TRUE(ok.ok()) << ok.status().ToString();
      if (!*ok) break;
      Value v;
      Status st = (*cursor)->Record(&v);
      EXPECT_TRUE(st.ok()) << st.ToString();
      out[(*cursor)->key()] = ToJson(v);
    }
    return out;
  }

  std::string dir_;
  std::unique_ptr<BufferCache> cache_;
};

// Acked writes — inserts and anti-matter deletes, never flushed — survive
// a crash image taken at an arbitrary moment.
TEST_P(WalTest, AckedWritesSurviveCrashImage) {
  std::map<int64_t, std::string> expected;
  {
    auto dataset = OpenDataset(Options(dir_));
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(dataset->Insert(MakeRecord(i)).ok());
    }
    for (int64_t i = 0; i < 50; i += 7) {
      ASSERT_TRUE(dataset->Delete(i).ok());
    }
    for (int64_t i = 50; i < 60; ++i) {
      ASSERT_TRUE(dataset->Insert(MakeRecord(i)).ok());
    }
    expected = ScanAll(*dataset->GetSnapshot());
    // Crash image while the dataset is still open: no Flush(), no clean
    // close — the WAL is the only durable copy of every record.
    CopyDir(dir_, dir_ + "_img");
  }
  auto recovered = OpenDataset(Options(dir_ + "_img"));
  EXPECT_EQ(recovered->stats().wal_replayed_records, 60u + 8u);
  EXPECT_EQ(ScanAll(*recovered->GetSnapshot()), expected);
  EXPECT_EQ(recovered->component_count(), 0u);  // all from the log
  // The recovered data flushes and reopens like any other.
  ASSERT_TRUE(recovered->Flush().ok());
  recovered.reset();
  auto reopened = OpenDataset(Options(dir_ + "_img"));
  EXPECT_EQ(ScanAll(*reopened->GetSnapshot()), expected);
  std::filesystem::remove_all(dir_ + "_img");
}

// The core kill-point sweep: cut the log at EVERY byte offset and check
// recovery yields exactly the durably-acked prefix — frames wholly on
// disk before the cut, nothing more, nothing less. Covers torn tails,
// mid-frame-header cuts, mid-payload cuts, and a cut inside the segment
// header.
TEST_P(WalTest, KillPointAtEveryByteOffsetRecoversExactPrefix) {
  constexpr int64_t kRecords = 5;
  const std::string wal_path = WalSegmentPath(dir_, "docs", 1);
  // acked_size[k] = segment bytes after the k-th acked insert (sync-per-
  // write: each insert's frame is fully on disk when Insert returns).
  std::vector<uint64_t> acked_size;
  {
    auto dataset = OpenDataset(Options(dir_));
    acked_size.push_back(std::filesystem::file_size(wal_path));
    for (int64_t i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(dataset->Insert(MakeRecord(i)).ok());
      acked_size.push_back(std::filesystem::file_size(wal_path));
    }
  }
  for (size_t k = 1; k < acked_size.size(); ++k) {
    ASSERT_GT(acked_size[k], acked_size[k - 1]);  // one frame per ack
  }

  const std::string img = dir_ + "_img";
  for (uint64_t cut = 0; cut <= acked_size.back(); ++cut) {
    CopyDir(dir_, img);
    std::filesystem::resize_file(img + "/docs_1.wal", cut);
    auto recovered = Dataset::Open(Options(img), cache_.get());
    ASSERT_TRUE(recovered.ok())
        << "open failed at cut " << cut << ": "
        << recovered.status().ToString();
    int64_t want = 0;
    while (want < kRecords &&
           acked_size[static_cast<size_t>(want) + 1] <= cut) {
      ++want;
    }
    const auto scan = ScanAll(*(*recovered)->GetSnapshot());
    ASSERT_EQ(scan.size(), static_cast<size_t>(want)) << "at cut " << cut;
    for (int64_t i = 0; i < want; ++i) {
      ASSERT_EQ(scan.count(i), 1u) << "key " << i << " lost at cut " << cut;
    }
  }

  // A recovered-from-torn-tail dataset keeps working: write, flush,
  // reopen. Pick a cut inside record 4's frame (drops it, keeps 0-2).
  const uint64_t mid_frame = (acked_size[3] + acked_size[4]) / 2;
  CopyDir(dir_, img);
  std::filesystem::resize_file(img + "/docs_1.wal", mid_frame);
  {
    auto recovered = OpenDataset(Options(img));
    ASSERT_TRUE(recovered->Insert(MakeRecord(100)).ok());
    ASSERT_TRUE(recovered->Delete(0).ok());
    ASSERT_TRUE(recovered->Flush().ok());
  }
  auto reopened = OpenDataset(Options(img));
  const auto scan = ScanAll(*reopened->GetSnapshot());
  EXPECT_EQ(scan.size(), 3u);  // keys 1, 2, 100 (0 deleted, 3-4 cut)
  EXPECT_EQ(scan.count(1), 1u);
  EXPECT_EQ(scan.count(2), 1u);
  EXPECT_EQ(scan.count(100), 1u);
  std::filesystem::remove_all(img);
}

// Memtable seals rotate the log; flushes advance the floor and delete the
// covered segments — only the active segment remains after a flush.
TEST_P(WalTest, RotationAdvancesFloorAndDeletesCoveredSegments) {
  DatasetOptions options = Options(dir_);
  options.memtable_bytes = 4 * 1024;  // force rotations via inline flushes
  std::map<int64_t, std::string> expected;
  {
    auto dataset = OpenDataset(options);
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(dataset->Insert(MakeRecord(i)).ok());
    }
    const DatasetStats stats = dataset->stats();
    EXPECT_GT(stats.flushes, 1u);
    EXPECT_GT(stats.wal_rotations, 1u);
    EXPECT_EQ(stats.wal_appends, 300u);
    // Every covered segment is gone; only the active one survives.
    EXPECT_EQ(CountWalFiles(dir_), 1u);
    expected = ScanAll(*dataset->GetSnapshot());
    CopyDir(dir_, dir_ + "_img");
  }
  auto recovered = OpenDataset(Options(dir_ + "_img"));
  EXPECT_EQ(ScanAll(*recovered->GetSnapshot()), expected);
  // Only the post-flush tail needed replay, not all 300 records.
  EXPECT_LT(recovered->stats().wal_replayed_records, 300u);
  std::filesystem::remove_all(dir_ + "_img");
}

// A crash that misses the covered-segment unlink (manifest durable,
// segments still on disk) must not resurrect or duplicate anything: the
// next open sweeps segments below the recorded floor.
TEST_P(WalTest, CoveredSegmentsAreSweptAtOpen) {
  std::map<int64_t, std::string> expected;
  {
    auto dataset = OpenDataset(Options(dir_));
    for (int64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(dataset->Insert(MakeRecord(i)).ok());
    }
    CopyDir(dir_, dir_ + "_pre");  // image with segment 1 = 40 records
  }
  {
    // Recover, flush (floor advances past segment 1, segment deleted).
    auto dataset = OpenDataset(Options(dir_));
    ASSERT_TRUE(dataset->Flush().ok());
    expected = ScanAll(*dataset->GetSnapshot());
    ASSERT_GE(dataset->component_count(), 1u);
  }
  // Simulate the crash-before-unlink: put the covered segment back next
  // to the post-flush manifest.
  std::filesystem::copy(dir_ + "_pre/docs_1.wal", dir_ + "/docs_1.wal");
  auto reopened = OpenDataset(Options(dir_));
  EXPECT_EQ(ScanAll(*reopened->GetSnapshot()), expected);
  EXPECT_EQ(reopened->stats().wal_replayed_records, 0u);
  EXPECT_FALSE(FileExists(dir_ + "/docs_1.wal"));  // swept, not replayed
  std::filesystem::remove_all(dir_ + "_pre");
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, WalTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// ---------------------------------------------------------------- WAL unit

std::string WalUnitDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/wal_unit_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

WalOptions UnitOptions(bool group_commit, uint32_t window_us = 0) {
  WalOptions options;
  options.enabled = true;
  options.group_commit = group_commit;
  options.group_window_us = window_us;
  return options;
}

uint64_t CountReplayed(const std::string& dir, uint64_t floor = 1) {
  auto result = ReplayWalSegments(
      dir, "log", floor, [](const WalReplayEntry&) { return Status::OK(); });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->records : 0;
}

// A whole group commit lands as one contiguous write; a cut inside it
// must recover exactly the frame-complete prefix. Frame boundaries are
// measured with a per-write-sync twin log writing identical records.
TEST(WalGroupCommit, MidGroupCutRecoversExactPrefix) {
  constexpr int kRecords = 6;
  const std::string ref_dir = WalUnitDir("group_ref");
  const std::string grp_dir = WalUnitDir("group_cut");
  const std::string row = "payload-0123456789";

  std::vector<uint64_t> frame_end;  // file size after each synced record
  {
    auto ref = WriteAheadLog::Open(ref_dir, "log", UnitOptions(false), 1, 1);
    ASSERT_TRUE(ref.ok());
    frame_end.push_back(
        std::filesystem::file_size(WalSegmentPath(ref_dir, "log", 1)));
    for (int i = 0; i < kRecords; ++i) {
      auto lsn = (*ref)->Append(false, i, Slice(row));
      ASSERT_TRUE(lsn.ok());
      ASSERT_TRUE((*ref)->Sync(*lsn).ok());
      frame_end.push_back(
          std::filesystem::file_size(WalSegmentPath(ref_dir, "log", 1)));
    }
  }
  {
    // Same records, one group: six appends, a single Sync, one fsync.
    auto grp = WriteAheadLog::Open(grp_dir, "log", UnitOptions(true), 1, 1);
    ASSERT_TRUE(grp.ok());
    uint64_t last = 0;
    for (int i = 0; i < kRecords; ++i) {
      auto lsn = (*grp)->Append(false, i, Slice(row));
      ASSERT_TRUE(lsn.ok());
      last = *lsn;
    }
    ASSERT_TRUE((*grp)->Sync(last).ok());
    const WalStats stats = (*grp)->stats();
    EXPECT_EQ(stats.appends, static_cast<uint64_t>(kRecords));
    EXPECT_EQ(stats.syncs, 1u);
    EXPECT_EQ(stats.group_entries_max, static_cast<uint64_t>(kRecords));
  }
  // Identical LSNs/keys/rows => byte-identical files; the reference's
  // frame boundaries apply to the group file.
  const std::string grp_file = WalSegmentPath(grp_dir, "log", 1);
  ASSERT_EQ(std::filesystem::file_size(grp_file), frame_end.back());

  const std::string cut_dir = WalUnitDir("group_cut_img");
  for (uint64_t cut = 0; cut <= frame_end.back(); ++cut) {
    std::filesystem::remove_all(cut_dir);
    std::filesystem::create_directories(cut_dir);
    std::filesystem::copy(grp_file, cut_dir + "/log_1.wal");
    std::filesystem::resize_file(cut_dir + "/log_1.wal", cut);
    uint64_t want = 0;
    while (want < kRecords && frame_end[static_cast<size_t>(want) + 1] <= cut) {
      ++want;
    }
    EXPECT_EQ(CountReplayed(cut_dir), want) << "at cut " << cut;
  }
  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(grp_dir);
  std::filesystem::remove_all(cut_dir);
}

// Concurrent writers coalesce: N threads, each append+sync per record,
// must finish with (usually far) fewer fsyncs than records while every
// record is durable and replayable.
TEST(WalGroupCommit, ConcurrentWritersShareFsyncs) {
  const std::string dir = WalUnitDir("group_threads");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  auto wal =
      WriteAheadLog::Open(dir, "log", UnitOptions(true, /*window_us=*/2000),
                          1, 1);
  ASSERT_TRUE(wal.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = (*wal)->Append(false, t * kPerThread + i, Slice("row"));
        if (!lsn.ok() || !(*wal)->Sync(*lsn).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  const WalStats stats = (*wal)->stats();
  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(stats.appends, kTotal);
  EXPECT_EQ((*wal)->durable_lsn(), kTotal);
  // The whole point: one fsync covers many writers. With an 8-thread
  // pile-up and a 2 ms linger this is far below one sync per record; the
  // bound is deliberately loose so scheduling noise cannot flake it.
  EXPECT_LT(stats.syncs, kTotal);
  EXPECT_GT(stats.group_entries_max, 1u);
  wal->reset();
  EXPECT_EQ(CountReplayed(dir), kTotal);
  std::filesystem::remove_all(dir);
}

// A bad frame in a non-final segment is corruption, not a tolerable torn
// tail: recovery must refuse rather than silently drop acked records.
TEST(WalReplayTest, CorruptionInNonFinalSegmentFails) {
  const std::string dir = WalUnitDir("old_segment_corrupt");
  {
    auto wal = WriteAheadLog::Open(dir, "log", UnitOptions(false), 1, 1);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      auto lsn = (*wal)->Append(false, i, Slice("row"));
      ASSERT_TRUE(lsn.ok());
      ASSERT_TRUE((*wal)->Sync(*lsn).ok());
    }
    auto sealed = (*wal)->Rotate();
    ASSERT_TRUE(sealed.ok());
    EXPECT_EQ(*sealed, 1u);
    auto lsn = (*wal)->Append(false, 99, Slice("row"));
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  }
  // Flip a payload byte near the end of sealed segment 1.
  const std::string seg1 = WalSegmentPath(dir, "log", 1);
  {
    std::fstream f(seg1, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('\xff');
  }
  auto result = ReplayWalSegments(
      dir, "log", 1, [](const WalReplayEntry&) { return Status::OK(); });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption())
      << result.status().ToString();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- durability regressions

// Satellite regression: a transient background-flush error must surface
// to a writer exactly where the contract says (once, then cleared), must
// not wedge back-pressure, and after the fault clears the stranded sealed
// memtables drain and every acknowledged write is still there.
TEST(DatasetBackpressureTest, TransientFlushErrorSurfacesAndRecovers) {
  const std::string dir =
      testing::TempDir() + "/wal_backpressure_transient";
  std::filesystem::remove_all(dir);
  FaultInjectionFs fault_fs;
  StoreOptions store_options;
  store_options.dir = dir;
  store_options.page_size = kPage;
  store_options.cache_bytes = 512 * kPage;
  store_options.background_threads = 1;
  store_options.fs = &fault_fs;
  // Keep the failure path fast: the component build retries transient
  // errors before surfacing, and this fault is persistent until cleared.
  store_options.io_retry.max_retries = 1;
  store_options.io_retry.initial_backoff_micros = 100;
  auto store = Store::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  DatasetOptions options;
  options.layout = LayoutKind::kAmax;
  options.memtable_bytes = 2 * 1024;  // a handful of records per memtable
  options.max_immutable_memtables = 1;
  options.amax_max_records = 200;
  auto ds = (*store)->OpenDataset("docs", options);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  // Fault injection: every flush attempt creates `docs_<id>.cmp.tmp`;
  // fail those creates until the fault is cleared below.
  {
    FaultRule rule;
    rule.path_substring = ".cmp.tmp";
    rule.op = FaultOp::kCreate;
    fault_fs.AddRule(rule);
  }

  Value record = Value::MakeObject();
  std::vector<int64_t> acked;
  Status seen_error;
  int64_t key = 0;
  for (int i = 0; i < 5000 && seen_error.ok(); ++i, ++key) {
    record.Set("id", Value::Int(key));
    record.Set("name", Value::String("k" + std::to_string(key)));
    Status st = (*ds)->Insert(record);
    if (st.ok()) {
      acked.push_back(key);
    } else {
      seen_error = st;  // surfaced exactly here; must not hang instead
    }
  }
  ASSERT_FALSE(seen_error.ok()) << "flush fault never surfaced to a writer";

  // Fault clears; ingestion and flushing must fully recover — including
  // the sealed memtables stranded by the failed attempts.
  fault_fs.ClearRules();
  EXPECT_GT(fault_fs.injected_errors(), 0u);
  int post_failures = 0;
  for (int i = 0; i < 200; ++i, ++key) {
    record.Set("id", Value::Int(key));
    record.Set("name", Value::String("k" + std::to_string(key)));
    Status st = (*ds)->Insert(record);
    if (st.ok()) {
      acked.push_back(key);
    } else {
      ++post_failures;  // at most the already-recorded error drains here
    }
  }
  EXPECT_LE(post_failures, 2);
  ASSERT_TRUE((*ds)->Flush().ok());
  ASSERT_TRUE((*ds)->WaitForBackgroundWork().ok());

  {
    // Scope the snapshot: it pins the store's BufferCache and must not
    // outlive the store below.
    auto snapshot = (*ds)->GetSnapshot();
    auto cursor = snapshot->Scan(Projection::All());
    ASSERT_TRUE(cursor.ok());
    size_t scanned = 0;
    while (true) {
      auto ok = (*cursor)->Next();
      ASSERT_TRUE(ok.ok());
      if (!*ok) break;
      ++scanned;
    }
    // Every acknowledged write survived the fault window.
    EXPECT_EQ(scanned, acked.size());
  }
  ASSERT_TRUE((*store)->Close().ok());
  store->reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lsmcol
