// Round-trip and behavioural tests for the extended Dremel format:
// schema inference + shredding + column encode/decode + record assembly.
// Exercises the paper's running examples (Figures 4–7) and edge cases.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/columnar/assembler.h"
#include "src/columnar/column_reader.h"
#include "src/columnar/column_writer.h"
#include "src/columnar/shredder.h"
#include "src/common/rng.h"
#include "src/json/parser.h"
#include "src/schema/schema.h"

namespace lsmcol {
namespace {

// Shreds a batch of JSON records, encodes all columns, decodes them, and
// reassembles each record. Returns the assembled records.
class ShredHarness {
 public:
  explicit ShredHarness(std::string pk = "id")
      : schema_(std::move(pk)), writers_(&schema_), shredder_(&schema_, &writers_) {}

  void AddJson(const std::string& json) {
    auto v = ParseJson(json);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    records_.push_back(std::move(*v));
    ASSERT_TRUE(shredder_.Shred(records_.back()).ok());
  }

  void AddAntiMatter(int64_t key) {
    ASSERT_TRUE(shredder_.ShredAntiMatter(key).ok());
    records_.push_back(Value::Missing());  // placeholder slot
  }

  // Encode all chunks and decode them back record by record.
  std::vector<Value> RoundTrip(const std::vector<bool>* projection = nullptr) {
    const int ncols = schema_.column_count();
    chunks_.assign(ncols, Buffer());
    for (int c = 0; c < ncols; ++c) {
      writers_.writer(c).FinishInto(&chunks_[c]);
    }
    std::vector<ColumnChunkReader> readers(ncols);
    for (int c = 0; c < ncols; ++c) {
      Status st = readers[c].Init(chunks_[c].slice(), schema_.column(c));
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    RecordAssembler assembler(&schema_);
    std::vector<Value> out;
    for (size_t r = 0; r < records_.size(); ++r) {
      std::vector<ColumnRecord> cells(ncols);
      std::vector<const ColumnRecord*> ptrs(ncols);
      for (int c = 0; c < ncols; ++c) {
        Status st = readers[c].NextRecord(&cells[c]);
        EXPECT_TRUE(st.ok()) << "col " << c << ": " << st.ToString();
        ptrs[c] = &cells[c];
      }
      out.push_back(assembler.Assemble(ptrs, projection));
    }
    // All chunks must be fully consumed.
    for (int c = 0; c < ncols; ++c) {
      EXPECT_TRUE(readers[c].AtEnd()) << "col " << c << " has leftover entries";
    }
    return out;
  }

  Schema& schema() { return schema_; }
  const std::vector<Value>& originals() const { return records_; }

 private:
  Schema schema_;
  ColumnWriterSet writers_;
  RecordShredder shredder_;
  std::vector<Value> records_;
  std::vector<Buffer> chunks_;
};

void ExpectRoundTrip(std::vector<std::string> jsons) {
  ShredHarness harness;
  for (const auto& j : jsons) harness.AddJson(j);
  std::vector<Value> assembled = harness.RoundTrip();
  ASSERT_EQ(assembled.size(), jsons.size());
  for (size_t i = 0; i < jsons.size(); ++i) {
    EXPECT_TRUE(ValueEquivalent(assembled[i], harness.originals()[i]))
        << "record " << i << "\n  original:  " << ToJson(harness.originals()[i])
        << "\n  assembled: " << ToJson(assembled[i]);
  }
}

TEST(SchemaInferenceTest, FlatRecord) {
  Schema schema("id");
  auto v = ParseJson(R"({"id": 1, "name": "Kim", "age": 26})");
  ASSERT_TRUE(schema.MergeRecord(*v).ok());
  EXPECT_EQ(schema.column_count(), 3);
  EXPECT_TRUE(schema.column(0).is_pk);
  EXPECT_EQ(schema.column(1).type, AtomicType::kString);
  EXPECT_EQ(schema.column(1).max_def, 1);
  EXPECT_EQ(schema.column(2).type, AtomicType::kInt64);
}

TEST(SchemaInferenceTest, PaperFigure4DefLevels) {
  // The gamers schema of Figure 4: max def/delimiter structure.
  Schema schema("id");
  auto v = ParseJson(R"({"id": 2, "name": {"first": "John", "last": "Smith"},
      "games": [{"title": "NBA", "consoles": ["PS4", "PC"]}]})");
  ASSERT_TRUE(schema.MergeRecord(*v).ok());
  // Columns: id, name.first(2), name.last(2), games[*].title(3),
  // games[*].consoles[*](4).
  ASSERT_EQ(schema.column_count(), 5);
  const ColumnInfo& first = schema.column(1);
  EXPECT_EQ(first.path, "name.first");
  EXPECT_EQ(first.max_def, 2);
  EXPECT_EQ(first.array_count(), 0);
  const ColumnInfo& title = schema.column(3);
  EXPECT_EQ(title.path, "games[*].title");
  EXPECT_EQ(title.max_def, 3);
  ASSERT_EQ(title.array_count(), 1);
  EXPECT_EQ(title.array_defs[0], 1);
  const ColumnInfo& consoles = schema.column(4);
  EXPECT_EQ(consoles.path, "games[*].consoles[*]");
  EXPECT_EQ(consoles.max_def, 4);
  ASSERT_EQ(consoles.array_count(), 2);
  EXPECT_EQ(consoles.array_defs[0], 1);
  EXPECT_EQ(consoles.array_defs[1], 3);
}

TEST(SchemaInferenceTest, UnionPromotionKeepsColumnIds) {
  Schema schema("id");
  ASSERT_TRUE(schema.MergeRecord(*ParseJson(R"({"id":1,"name":"John"})")).ok());
  const int string_col = 1;
  EXPECT_EQ(schema.column(string_col).type, AtomicType::kString);
  ASSERT_TRUE(schema
                  .MergeRecord(*ParseJson(
                      R"({"id":2,"name":{"first":"Ann","last":"Brown"}})"))
                  .ok());
  // Existing column unchanged; two new columns for the object alternative.
  EXPECT_EQ(schema.column(string_col).type, AtomicType::kString);
  EXPECT_EQ(schema.column(string_col).max_def, 1);
  EXPECT_EQ(schema.column_count(), 4);
  EXPECT_EQ(schema.column(2).max_def, 2);  // name<object>.first
  const SchemaNode* name = schema.ResolvePath({"name"});
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(name->is_union());
  EXPECT_EQ(name->alternatives().size(), 2u);
}

TEST(SchemaInferenceTest, HeterogeneousArrayElements) {
  Schema schema("id");
  ASSERT_TRUE(
      schema.MergeRecord(*ParseJson(R"({"id":1,"games":["NBA",["FIFA","PES"],"NFL"]})"))
          .ok());
  const SchemaNode* games = schema.ResolvePath({"games"});
  ASSERT_NE(games, nullptr);
  ASSERT_TRUE(games->is_array());
  ASSERT_NE(games->item(), nullptr);
  EXPECT_TRUE(games->item()->is_union());
}

TEST(SchemaInferenceTest, RejectsMissingOrNonIntPk) {
  Schema schema("id");
  EXPECT_FALSE(schema.MergeRecord(*ParseJson(R"({"x":1})")).ok());
  EXPECT_FALSE(schema.MergeRecord(*ParseJson(R"({"id":"one"})")).ok());
  EXPECT_FALSE(schema.MergeRecord(Value::Int(3)).ok());
  EXPECT_EQ(schema.merged_record_count(), 0u);
}

TEST(SchemaInferenceTest, SerializationRoundTrip) {
  Schema schema("id");
  ASSERT_TRUE(schema
                  .MergeRecord(*ParseJson(
                      R"({"id":1,"name":"John","games":["NBA",["FIFA"]],
                          "meta":{"tags":[1,2],"active":true,"score":1.5}})"))
                  .ok());
  Buffer buf;
  schema.SerializeTo(&buf);
  auto restored = Schema::Deserialize(buf.slice());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->column_count(), schema.column_count());
  EXPECT_EQ(restored->pk_field(), "id");
  for (int c = 0; c < schema.column_count(); ++c) {
    EXPECT_EQ(restored->column(c).type, schema.column(c).type) << c;
    EXPECT_EQ(restored->column(c).max_def, schema.column(c).max_def) << c;
    EXPECT_EQ(restored->column(c).array_defs, schema.column(c).array_defs) << c;
    EXPECT_EQ(restored->column(c).path, schema.column(c).path) << c;
  }
  EXPECT_TRUE(restored->column(0).is_pk);
  EXPECT_EQ(restored->ToString(), schema.ToString());
}

TEST(ShredRoundTripTest, PaperFigure4Gamers) {
  // The four records of Figure 4a.
  ExpectRoundTrip({
      R"({"id": 0, "games": [{"title": "NFL"}]})",
      R"({"id": 1, "name": {"last": "Brown"},
          "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]})",
      R"({"id": 2, "name": {"first": "John", "last": "Smith"},
          "games": [{"title": "NBA", "consoles": ["PS4", "PC"]},
                    {"title": "NFL", "consoles": ["XBOX"]}]})",
      R"({"id": 3})",
  });
}

TEST(ShredRoundTripTest, PaperFigure6HeterogeneousValues) {
  // The two records of Figure 6 (union of string/object and
  // string/array-of-strings), plus ids.
  ExpectRoundTrip({
      R"({"id": 1, "name": "John", "games": ["NBA", ["FIFA", "PES"], "NFL"]})",
      R"({"id": 2, "name": {"first": "Ann", "last": "Brown"},
          "games": ["NFL", "NBA"]})",
  });
}

TEST(ShredRoundTripTest, FlatMixedTypes) {
  ExpectRoundTrip({
      R"({"id": 1, "a": 10, "b": 2.5, "c": "x", "d": true})",
      R"({"id": 2, "a": -3, "b": 0.125, "c": "", "d": false})",
      R"({"id": 3})",
      R"({"id": 4, "c": "only c"})",
  });
}

TEST(ShredRoundTripTest, EmptyArrayAndObject) {
  ExpectRoundTrip({
      R"({"id": 1, "tags": ["a"], "meta": {"x": 1}})",
      R"({"id": 2, "tags": [], "meta": {}})",
      R"({"id": 3, "tags": ["b", "c"], "meta": {"x": 2}})",
  });
}

TEST(ShredRoundTripTest, DeepNesting) {
  ExpectRoundTrip({
      R"({"id": 1, "a": {"b": {"c": {"d": {"e": 42}}}}})",
      R"({"id": 2, "a": {"b": {"c": {}}}})",
      R"({"id": 3, "a": {"b": 7}})",  // b becomes union(object,int)
  });
}

TEST(ShredRoundTripTest, TripleNestedArrays) {
  ExpectRoundTrip({
      R"({"id": 1, "m": [[[1, 2], [3]], [[4]]]})",
      R"({"id": 2, "m": [[[5]]]})",
      R"({"id": 3, "m": []})",
      R"({"id": 4})",
      R"({"id": 5, "m": [[], [[6, 7]]]})",
  });
}

TEST(ShredRoundTripTest, ArraysOfObjectsWithDivergentFields) {
  ExpectRoundTrip({
      R"({"id": 1, "es": [{"a": 1}, {"b": "x"}, {"a": 2, "b": "y"}]})",
      R"({"id": 2, "es": [{}]})",
      R"({"id": 3, "es": [{"c": true}]})",
  });
}

TEST(ShredRoundTripTest, UnionInsideArrayOfObjects) {
  ExpectRoundTrip({
      R"({"id": 1, "addr": [{"country": "US"}]})",
      R"({"id": 2, "addr": {"country": "DE"}})",  // object OR array of objects
      R"({"id": 3, "addr": [{"country": "FR"}, {"country": "JP"}]})",
  });
}

TEST(ShredRoundTripTest, NumericTypeConflict) {
  ExpectRoundTrip({
      R"({"id": 1, "v": 10})",
      R"({"id": 2, "v": 2.5})",
      R"({"id": 3, "v": "ten"})",
      R"({"id": 4, "v": true})",
      R"({"id": 5, "v": 11})",
  });
}

TEST(ShredRoundTripTest, SchemaEvolutionBackfillsNulls) {
  // Later records introduce columns; earlier records must read as missing.
  ExpectRoundTrip({
      R"({"id": 1})",
      R"({"id": 2, "x": 1})",
      R"({"id": 3, "x": 2, "y": {"z": "deep"}})",
      R"({"id": 4, "arr": [1, 2, 3]})",
  });
}

TEST(ShredRoundTripTest, NullsAreTreatedAsMissing) {
  ShredHarness harness;
  harness.AddJson(R"({"id": 1, "a": null, "b": [1, null, 2]})");
  auto assembled = harness.RoundTrip();
  ASSERT_EQ(assembled.size(), 1u);
  // "a" disappears; the null array element round-trips as null.
  EXPECT_TRUE(assembled[0].Get("a").is_missing());
  auto expected = ParseJson(R"({"id": 1, "b": [1, null, 2]})");
  EXPECT_TRUE(ValueEquivalent(assembled[0], *expected))
      << ToJson(assembled[0]);
}

TEST(ShredRoundTripTest, AntiMatterCarriesKey) {
  ShredHarness harness;
  harness.AddJson(R"({"id": 7, "v": 1})");
  harness.AddAntiMatter(9);
  harness.AddJson(R"({"id": 11, "v": 3})");

  // Decode the PK column directly.
  Schema& schema = harness.schema();
  (void)harness.RoundTrip();  // assembly of live records must still work

  // Re-shred to inspect the PK chunk.
  Schema schema2("id");
  ColumnWriterSet writers(&schema2);
  RecordShredder shredder(&schema2, &writers);
  ASSERT_TRUE(shredder.Shred(*ParseJson(R"({"id": 7, "v": 1})")).ok());
  ASSERT_TRUE(shredder.ShredAntiMatter(9).ok());
  Buffer pk_chunk;
  writers.writer(0).FinishInto(&pk_chunk);
  ColumnChunkReader reader;
  ASSERT_TRUE(reader.Init(pk_chunk.slice(), schema2.column(0)).ok());
  ColumnRecord rec;
  ASSERT_TRUE(reader.NextRecord(&rec).ok());
  EXPECT_FALSE(rec.anti_matter);
  EXPECT_EQ(rec.values[0].int_value(), 7);
  ASSERT_TRUE(reader.NextRecord(&rec).ok());
  EXPECT_TRUE(rec.anti_matter);
  EXPECT_EQ(rec.values[0].int_value(), 9);
  EXPECT_EQ(schema.column(0).max_def, 1);
}

TEST(ShredRoundTripTest, ProjectionPrunesFields) {
  ShredHarness harness;
  harness.AddJson(R"({"id": 1, "keep": "yes", "drop": {"x": [1,2]}})");
  harness.AddJson(R"({"id": 2, "keep": "also", "drop": {"x": [3]}})");
  Schema& schema = harness.schema();
  // Project only {id, keep}.
  std::vector<bool> projection(schema.column_count(), false);
  projection[0] = true;
  for (int c = 0; c < schema.column_count(); ++c) {
    if (schema.column(c).path == "keep") projection[c] = true;
  }
  auto assembled = harness.RoundTrip(&projection);
  ASSERT_EQ(assembled.size(), 2u);
  EXPECT_EQ(assembled[0].Get("keep").string_value(), "yes");
  EXPECT_TRUE(assembled[0].Get("drop").is_missing());
  EXPECT_EQ(assembled[1].Get("id").int_value(), 2);
}

TEST(ShredRoundTripTest, SkipRecordsAdvancesAllStreams) {
  // Shred 100 records, skip 57, verify the 58th decodes correctly.
  Schema schema("id");
  ColumnWriterSet writers(&schema);
  RecordShredder shredder(&schema, &writers);
  Rng rng(21);
  std::vector<Value> records;
  for (int i = 0; i < 100; ++i) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(i));
    v.Set("s", Value::String("str" + std::to_string(i)));
    Value arr = Value::MakeArray();
    for (uint64_t j = 0; j < rng.Uniform(4); ++j) {
      arr.Push(Value::Int(static_cast<int64_t>(i * 10 + j)));
    }
    v.Set("a", std::move(arr));
    records.push_back(std::move(v));
    ASSERT_TRUE(shredder.Shred(records.back()).ok());
  }
  const int ncols = schema.column_count();
  std::vector<Buffer> chunks(ncols);
  for (int c = 0; c < ncols; ++c) writers.writer(c).FinishInto(&chunks[c]);
  std::vector<ColumnChunkReader> readers(ncols);
  std::vector<ColumnRecord> cells(ncols);
  std::vector<const ColumnRecord*> ptrs(ncols);
  for (int c = 0; c < ncols; ++c) {
    ASSERT_TRUE(readers[c].Init(chunks[c].slice(), schema.column(c)).ok());
    ASSERT_TRUE(readers[c].SkipRecords(57).ok());
    ASSERT_TRUE(readers[c].NextRecord(&cells[c]).ok());
    ptrs[c] = &cells[c];
  }
  RecordAssembler assembler(&schema);
  Value assembled = assembler.Assemble(ptrs);
  EXPECT_TRUE(ValueEquivalent(assembled, records[57]))
      << ToJson(assembled) << " vs " << ToJson(records[57]);
}

TEST(ShredRoundTripTest, LargeRandomizedMixedBatch) {
  // Property test: 300 randomized records with evolving shapes round-trip.
  Rng rng(1234);
  std::vector<std::string> jsons;
  for (int i = 0; i < 300; ++i) {
    std::string j = "{\"id\": " + std::to_string(i);
    if (rng.Bernoulli(0.8)) {
      j += ", \"num\": " + std::to_string(static_cast<int64_t>(rng.Next() % 100000));
    }
    if (rng.Bernoulli(0.5)) {
      j += ", \"txt\": \"" + rng.Word(0, 12) + "\"";
    }
    if (rng.Bernoulli(0.4)) {
      j += ", \"nested\": {\"a\": " + std::to_string(rng.Uniform(10)) +
           ", \"b\": {\"c\": \"" + rng.Word(1, 4) + "\"}}";
    }
    if (rng.Bernoulli(0.4)) {
      j += ", \"arr\": [";
      size_t n = rng.Uniform(5);
      for (size_t k = 0; k < n; ++k) {
        if (k) j += ",";
        if (rng.Bernoulli(0.3)) {
          j += "[\"" + rng.Word(1, 3) + "\"]";  // heterogeneous element
        } else {
          j += std::to_string(rng.Uniform(100));
        }
      }
      j += "]";
    }
    if (rng.Bernoulli(0.2)) {
      j += ", \"poly\": " +
           std::string(rng.Bernoulli(0.5) ? "\"s\"" : "17");
    }
    j += "}";
    jsons.push_back(std::move(j));
  }
  ExpectRoundTrip(jsons);
}

// ------------------------------------------ vectorized chunk read path

ColumnInfo FlatColumn(AtomicType type) {
  ColumnInfo info;
  info.id = 1;
  info.type = type;
  info.max_def = 1;
  info.path = "x";
  return info;
}

// A flat int column with runs of present values and runs of NULLs, so
// both the def stream and the value stream cross batch boundaries.
struct FlatIntChunk {
  Buffer encoded;
  std::vector<int> defs;       // per record
  std::vector<int64_t> values; // per present record
};

FlatIntChunk MakeFlatIntChunk(size_t records) {
  FlatIntChunk out;
  ColumnChunkWriter writer(FlatColumn(AtomicType::kInt64));
  Rng rng(99);
  int64_t v = 0;
  size_t i = 0;
  while (i < records) {
    const bool present = rng.Bernoulli(0.7);
    const size_t run = std::min<size_t>(1 + rng.Uniform(90), records - i);
    for (size_t k = 0; k < run; ++k) {
      if (present) {
        v += static_cast<int64_t>(rng.Uniform(50));
        writer.AddInt64(v);
        out.defs.push_back(1);
        out.values.push_back(v);
      } else {
        writer.AddNull(0);
        out.defs.push_back(0);
      }
    }
    i += run;
  }
  writer.FinishInto(&out.encoded);
  return out;
}

TEST(EntryBatchTest, BatchesMatchPerEntryDecodeAcrossRunBoundaries) {
  const FlatIntChunk chunk = MakeFlatIntChunk(700);
  for (size_t batch : {1ul, 7ul, 64ul, 333ul, 700ul, 10000ul}) {
    ColumnChunkReader reader;
    ASSERT_TRUE(
        reader.Init(chunk.encoded.slice(), FlatColumn(AtomicType::kInt64))
            .ok());
    std::vector<int> defs;
    std::vector<int64_t> values;
    ColumnEntryBatch out;
    while (!reader.AtEnd()) {
      ASSERT_TRUE(reader.NextEntryBatch(batch, &out).ok());
      ASSERT_GT(out.entry_count(), 0u);
      for (size_t i = 0; i < out.entry_count(); ++i) {
        defs.push_back(out.defs[i]);
        if (out.value_index[i] >= 0) {
          values.push_back(out.ints[static_cast<size_t>(out.value_index[i])]);
        }
      }
    }
    EXPECT_EQ(defs, chunk.defs) << "batch=" << batch;
    EXPECT_EQ(values, chunk.values) << "batch=" << batch;
    // Exhausted chunk: empty batch, no error.
    ASSERT_TRUE(reader.NextEntryBatch(batch, &out).ok());
    EXPECT_EQ(out.entry_count(), 0u);
  }
}

TEST(EntryBatchTest, SkipRecordsInterleavesWithBatches) {
  const FlatIntChunk chunk = MakeFlatIntChunk(600);
  ColumnChunkReader reader;
  ASSERT_TRUE(
      reader.Init(chunk.encoded.slice(), FlatColumn(AtomicType::kInt64)).ok());
  // skip 100, batch 50, skip 1, skip 149, batch the rest.
  ASSERT_TRUE(reader.SkipRecords(100).ok());
  ColumnEntryBatch out;
  ASSERT_TRUE(reader.NextEntryBatch(50, &out).ok());
  auto value_at = [&](size_t record) {
    // Index of record's value among present values.
    size_t ordinal = 0;
    for (size_t i = 0; i < record; ++i) ordinal += chunk.defs[i] == 1;
    return chunk.values[ordinal];
  };
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out.defs[i], chunk.defs[100 + i]);
    if (out.value_index[i] >= 0) {
      EXPECT_EQ(out.ints[static_cast<size_t>(out.value_index[i])],
                value_at(100 + i));
    }
  }
  ASSERT_TRUE(reader.SkipRecords(1).ok());
  ASSERT_TRUE(reader.SkipRecords(149).ok());
  ASSERT_TRUE(reader.NextEntryBatch(1000, &out).ok());
  EXPECT_EQ(out.entry_count(), 600u - 300u);
  EXPECT_EQ(out.defs[0], chunk.defs[300]);
  if (out.value_index[0] >= 0) {
    EXPECT_EQ(out.ints[0], value_at(300));
  }
  // Everything consumed: further skips fail, batches come back empty.
  EXPECT_FALSE(reader.SkipRecords(1).ok());
  ASSERT_TRUE(reader.NextEntryBatch(10, &out).ok());
  EXPECT_EQ(out.entry_count(), 0u);
}

TEST(EntryBatchTest, EmptyChunkYieldsEmptyBatch) {
  ColumnChunkWriter writer(FlatColumn(AtomicType::kString));
  Buffer encoded;
  writer.FinishInto(&encoded);
  ColumnChunkReader reader;
  ASSERT_TRUE(
      reader.Init(encoded.slice(), FlatColumn(AtomicType::kString)).ok());
  EXPECT_EQ(reader.entry_count(), 0u);
  ColumnEntryBatch out;
  ASSERT_TRUE(reader.NextEntryBatch(16, &out).ok());
  EXPECT_EQ(out.entry_count(), 0u);
  ASSERT_TRUE(reader.SkipRecords(0).ok());
  EXPECT_FALSE(reader.SkipRecords(1).ok());
}

TEST(EntryBatchTest, SingleEntryBatchesOnStringsAndDoubles) {
  ColumnChunkWriter swriter(FlatColumn(AtomicType::kString));
  swriter.AddString(Slice("one"));
  swriter.AddNull(0);
  swriter.AddString(Slice("three"));
  Buffer senc;
  swriter.FinishInto(&senc);
  ColumnChunkReader sreader;
  ASSERT_TRUE(sreader.Init(senc.slice(), FlatColumn(AtomicType::kString)).ok());
  ColumnEntryBatch out;
  ASSERT_TRUE(sreader.NextEntryBatch(1, &out).ok());
  ASSERT_EQ(out.entry_count(), 1u);
  EXPECT_EQ(out.strings[0].ToString(), "one");
  ASSERT_TRUE(sreader.NextEntryBatch(1, &out).ok());
  EXPECT_EQ(out.value_index[0], -1);
  ASSERT_TRUE(sreader.NextEntryBatch(1, &out).ok());
  EXPECT_EQ(out.strings[0].ToString(), "three");

  ColumnChunkWriter dwriter(FlatColumn(AtomicType::kDouble));
  dwriter.AddDouble(1.5);
  dwriter.AddDouble(-2.25);
  Buffer denc;
  dwriter.FinishInto(&denc);
  ColumnChunkReader dreader;
  ASSERT_TRUE(dreader.Init(denc.slice(), FlatColumn(AtomicType::kDouble)).ok());
  ASSERT_TRUE(dreader.NextEntryBatch(10, &out).ok());
  ASSERT_EQ(out.entry_count(), 2u);
  EXPECT_EQ(out.doubles[0], 1.5);
  EXPECT_EQ(out.doubles[1], -2.25);
}

TEST(EntryBatchTest, PkBatchCarriesAntiMatterKeys) {
  ColumnInfo pk;
  pk.id = 0;
  pk.type = AtomicType::kInt64;
  pk.max_def = 1;
  pk.is_pk = true;
  pk.path = "id";
  ColumnChunkWriter writer(pk);
  writer.AddKey(10, /*anti_matter=*/false);
  writer.AddKey(11, /*anti_matter=*/true);
  writer.AddKey(12, /*anti_matter=*/false);
  Buffer encoded;
  writer.FinishInto(&encoded);
  ColumnChunkReader reader;
  ASSERT_TRUE(reader.Init(encoded.slice(), pk).ok());
  ColumnEntryBatch out;
  ASSERT_TRUE(reader.NextEntryBatch(100, &out).ok());
  ASSERT_EQ(out.entry_count(), 3u);
  EXPECT_EQ(out.defs[0], 1);
  EXPECT_EQ(out.defs[1], 0);  // anti-matter still carries its key
  EXPECT_EQ(out.defs[2], 1);
  EXPECT_EQ(out.ints, (std::vector<int64_t>{10, 11, 12}));
  EXPECT_EQ(out.value_index[1], 1);
}

TEST(EntryBatchTest, SkipRecordsRunGranularOnBoolAndStringColumns) {
  // Bool column: long uniform runs make the def stream pure RLE.
  ColumnChunkWriter bwriter(FlatColumn(AtomicType::kBoolean));
  for (int i = 0; i < 300; ++i) bwriter.AddBool(i % 3 == 0);
  for (int i = 0; i < 100; ++i) bwriter.AddNull(0);
  bwriter.AddBool(true);
  Buffer benc;
  bwriter.FinishInto(&benc);
  ColumnChunkReader breader;
  ASSERT_TRUE(
      breader.Init(benc.slice(), FlatColumn(AtomicType::kBoolean)).ok());
  ASSERT_TRUE(breader.SkipRecords(399).ok());
  ColumnEntryBatch out;
  ASSERT_TRUE(breader.NextEntryBatch(10, &out).ok());
  ASSERT_EQ(out.entry_count(), 2u);
  EXPECT_EQ(out.value_index[0], -1);  // record 399 is a NULL
  EXPECT_EQ(out.bools[0], 1u);        // record 400 is the trailing true

  // String column: skip must advance byte offsets exactly.
  ColumnChunkWriter swriter(FlatColumn(AtomicType::kString));
  for (int i = 0; i < 50; ++i) {
    swriter.AddString(Slice("s" + std::to_string(i)));
  }
  Buffer senc;
  swriter.FinishInto(&senc);
  ColumnChunkReader sreader;
  ASSERT_TRUE(sreader.Init(senc.slice(), FlatColumn(AtomicType::kString)).ok());
  ASSERT_TRUE(sreader.SkipRecords(33).ok());
  ASSERT_TRUE(sreader.NextEntryBatch(1, &out).ok());
  EXPECT_EQ(out.strings[0].ToString(), "s33");
}

}  // namespace
}  // namespace lsmcol
