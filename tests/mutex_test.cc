// Unit tests for the annotated mutex wrappers (src/common/mutex.h): basic
// lock/condvar behavior, and — when the runtime rank checker is compiled
// in — death tests proving that rank-order violations abort with a
// diagnostic instead of deadlocking silently.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/mutex.h"

namespace lsmcol {
namespace {

TEST(MutexTest, LockUnlockAndScopedLock) {
  Mutex mu(MutexRank::kLeaf);
  mu.Lock();
  mu.Unlock();
  {
    MutexLock lock(&mu);
    // Relockable scoped lock: drop and retake inside the scope (the
    // pattern FlushOneImmutableLocked uses around component builds).
    lock.Unlock();
    lock.Lock();
  }
  // The destructor released it: a fresh acquire must succeed.
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu(MutexRank::kLeaf);
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, CondVarWaitAndNotify) {
  Mutex mu(MutexRank::kLeaf);
  CondVar cv;
  bool ready = false;
  std::thread signaler([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  signaler.join();
}

TEST(MutexTest, RanksAreOrderedAsDocumented) {
  // The acquisition order the subsystems rely on; see src/common/mutex.h.
  EXPECT_LT(static_cast<int>(MutexRank::kStore),
            static_cast<int>(MutexRank::kDataset));
  EXPECT_LT(static_cast<int>(MutexRank::kDataset),
            static_cast<int>(MutexRank::kScheduler));
  EXPECT_LT(static_cast<int>(MutexRank::kScheduler),
            static_cast<int>(MutexRank::kWal));
  EXPECT_LT(static_cast<int>(MutexRank::kWal),
            static_cast<int>(MutexRank::kBufferCache));
  EXPECT_LT(static_cast<int>(MutexRank::kBufferCache),
            static_cast<int>(MutexRank::kComponentRowLeaf));
  EXPECT_LT(static_cast<int>(MutexRank::kComponentRowLeaf),
            static_cast<int>(MutexRank::kLeaf));
}

TEST(MutexDeathTest, RankInversionAborts) {
  if (!LockOrderChecksEnabled()) {
    GTEST_SKIP() << "lock-order checks compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The exact inversion the annotations forbid: Dataset::mu_ (kDataset)
  // must be acquired before any WAL mutex (kWal), never after.
  EXPECT_DEATH(
      {
        Mutex wal_rank(MutexRank::kWal);
        Mutex dataset_rank(MutexRank::kDataset);
        wal_rank.Lock();
        dataset_rank.Lock();  // rank decreases: must abort
      },
      "lock-order violation");
}

TEST(MutexDeathTest, RecursiveAcquisitionAborts) {
  if (!LockOrderChecksEnabled()) {
    GTEST_SKIP() << "lock-order checks compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu(MutexRank::kLeaf);
        mu.Lock();
        mu.Lock();  // self-deadlock: must abort, not hang
      },
      "lock-order violation");
}

TEST(MutexDeathTest, EqualRankAborts) {
  if (!LockOrderChecksEnabled()) {
    GTEST_SKIP() << "lock-order checks compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two distinct mutexes of the same rank: the strict ordering makes
  // same-rank nesting a violation too (no defined order between them).
  EXPECT_DEATH(
      {
        Mutex a(MutexRank::kLeaf);
        Mutex b(MutexRank::kLeaf);
        a.Lock();
        b.Lock();
      },
      "lock-order violation");
}

}  // namespace
}  // namespace lsmcol
