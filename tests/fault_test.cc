// Integration tests for end-to-end I/O fault tolerance: ENOSPC mid-flush
// cleanup and resume, transient-error retry, bit-flip detection +
// component quarantine across all four layouts, mixed-format-version
// datasets, and the Store::Health() accessor.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/storage/fault_injection_fs.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

class FaultTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/fault_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoreOptions Options(FileSystem* fs = nullptr) {
    StoreOptions options;
    options.dir = dir_;
    options.page_size = kPage;
    options.cache_bytes = 512 * kPage;
    options.fs = fs;
    return options;
  }

  DatasetOptions DocOptions() {
    DatasetOptions options;
    options.layout = GetParam();
    options.auto_merge = false;  // tests control merging explicitly
    return options;
  }

  static Value MakeRecord(int64_t id) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(id));
    v.Set("name", Value::String("user_" + std::to_string(id)));
    v.Set("score", Value::Double(static_cast<double>(id) * 0.5));
    return v;
  }

  std::vector<std::string> TempComponentFiles() const {
    std::vector<std::string> out;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_ + "/docs")) {
      const std::string name = entry.path().filename().string();
      if (name.size() >= 8 && name.rfind(".cmp.tmp") == name.size() - 8) {
        out.push_back(name);
      }
    }
    return out;
  }

  /// Final component files (*.cmp), sorted so the newest (largest id,
  /// names share a fixed "docs_" prefix and zero-free numbering sorts
  /// short-before-long) can be picked deterministically.
  std::vector<std::string> ComponentFiles() const {
    std::vector<std::string> out;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_ + "/docs")) {
      if (entry.path().extension() == ".cmp") {
        out.push_back(entry.path().string());
      }
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.size() != b.size() ? a.size() < b.size() : a < b;
    });
    return out;
  }

  std::string dir_;
};

// Satellite: a bit flip in a component leaf — whichever layout wrote it —
// surfaces as ChecksumMismatch (never a silent wrong result), quarantines
// exactly the affected component, and leaves the rest of the dataset
// readable and writable. Store::Health() reports the damage.
TEST_P(FaultTest, BitFlipQuarantinesOnlyAffectedComponent) {
  {
    auto store = Store::Open(Options());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto ds = (*store)->OpenDataset("docs", DocOptions());
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    for (int64_t i = 0; i < 80; ++i) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(i)).ok());
    }
    ASSERT_TRUE((*ds)->Flush().ok());  // component A: keys 0..79
    for (int64_t i = 1000; i < 1080; ++i) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(i)).ok());
    }
    ASSERT_TRUE((*ds)->Flush().ok());  // component B: keys 1000..1079
    ASSERT_EQ((*ds)->component_count(), 2u);
  }  // close: all handles released, cache dies with the store

  // Flip one bit in the oldest component's first leaf page, underneath
  // the engine.
  const auto components = ComponentFiles();
  ASSERT_EQ(components.size(), 2u);
  const std::string& victim = components.front();
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << victim;
    f.seekg(16);
    char c = 0;
    f.get(c);
    f.seekp(16);
    f.put(static_cast<char>(c ^ 0x04));
  }

  auto store = Store::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;

  // A full scan must hit the damaged leaf and fail loudly.
  Status scan_error;
  auto cursor = ds->Scan(Projection::All());
  if (!cursor.ok()) {
    scan_error = cursor.status();
  } else {
    while (true) {
      auto ok = (*cursor)->Next();
      if (!ok.ok()) {
        scan_error = ok.status();
        break;
      }
      if (!*ok) break;
      Value v;
      Status st = (*cursor)->Record(&v);
      if (!st.ok()) {
        scan_error = st;
        break;
      }
    }
  }
  ASSERT_TRUE(scan_error.IsChecksumMismatch()) << scan_error.ToString();
  EXPECT_NE(scan_error.ToString().find(victim), std::string::npos)
      << scan_error.ToString();

  // Exactly the damaged component is quarantined; its reads now fail
  // fast with the original reason.
  DatasetStats stats = ds->stats();
  EXPECT_GE(stats.checksum_failures, 1u);
  EXPECT_EQ(stats.quarantined_components, 1u);
  Value record;
  EXPECT_TRUE(ds->Lookup(10, &record).IsChecksumMismatch());
  // Keys the quarantined component provably cannot hold (its key range
  // ends at 79) still resolve from the clean component...
  ASSERT_TRUE(ds->Lookup(1000, &record).ok());
  EXPECT_EQ(record.Get("name").string_value(), "user_1000");
  // ...and the dataset stays writable: new data flushes into new
  // components.
  ASSERT_TRUE(ds->Insert(MakeRecord(5000)).ok());
  ASSERT_TRUE(ds->Flush().ok());
  ASSERT_TRUE(ds->Lookup(5000, &record).ok());
  EXPECT_EQ(ds->component_count(), 3u);
  // Merging is suspended (a merge would read — and then delete — the
  // damaged file); the dataset reports no background error.
  ASSERT_TRUE(ds->MaybeMerge().ok());
  EXPECT_EQ(ds->component_count(), 3u);
  EXPECT_TRUE(ds->background_error().ok());

  // The store-level health report names the damage.
  const auto health = (*store)->Health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].name, "docs");
  EXPECT_FALSE(health[0].has_background_error);
  EXPECT_EQ(health[0].quarantined_components, 1u);
  EXPECT_GE(health[0].checksum_failures, 1u);
}

// Satellite: components written before the checksum trailer existed
// (format v2) and after (v3) coexist in one dataset; reads sniff the
// format per file.
TEST_P(FaultTest, MixedFormatVersionsReadTogether) {
  {
    auto store = Store::Open(Options());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    DatasetOptions legacy = DocOptions();
    legacy.component_format_version = kComponentFormatLegacy;
    auto ds = (*store)->OpenDataset("docs", legacy);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    for (int64_t i = 0; i < 60; ++i) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(i)).ok());
    }
    ASSERT_TRUE((*ds)->Flush().ok());  // legacy, trailer-free component
  }
  auto store = Store::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());  // v3 default
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 1000; i < 1060; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());  // checksummed component
  ASSERT_EQ(ds->component_count(), 2u);

  // Both generations are readable in one scan, and point reads hit both.
  size_t seen = 0;
  auto cursor = ds->Scan(Projection::All());
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  while (true) {
    auto ok = (*cursor)->Next();
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    if (!*ok) break;
    ++seen;
  }
  EXPECT_EQ(seen, 120u);
  Value record;
  ASSERT_TRUE(ds->Lookup(30, &record).ok());
  ASSERT_TRUE(ds->Lookup(1030, &record).ok());
  // Merging the two formats produces one checksummed component.
  ASSERT_TRUE(ds->MergeAll().ok());
  EXPECT_EQ(ds->component_count(), 1u);
  ASSERT_TRUE(ds->Lookup(30, &record).ok());
  ASSERT_TRUE(ds->Lookup(1030, &record).ok());
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, FaultTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// ------------------------------------------------- non-parameterized

class FaultFsStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/fault_fs_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::string> TempComponentFiles() const {
    std::vector<std::string> out;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_ + "/docs")) {
      const std::string name = entry.path().filename().string();
      if (name.size() >= 8 && name.rfind(".cmp.tmp") == name.size() - 8) {
        out.push_back(name);
      }
    }
    return out;
  }

  std::string dir_;
};

// Satellite: ENOSPC in the middle of a flush fails the flush, unlinks the
// half-written .cmp.tmp immediately (so the space comes back without
// waiting for the next open's sweep), and once space frees, the same
// sealed memtable flushes successfully. A reopen finds no orphans.
TEST_F(FaultFsStoreTest, EnospcMidFlushCleansTempAndResumes) {
  FaultInjectionFs fault_fs;
  StoreOptions store_options;
  store_options.dir = dir_;
  store_options.page_size = kPage;
  store_options.cache_bytes = 512 * kPage;
  store_options.fs = &fault_fs;
  store_options.io_retry.max_retries = 1;  // ENOSPC persists; fail fast
  store_options.io_retry.initial_backoff_micros = 100;
  auto store = Store::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  DatasetOptions options;
  options.layout = LayoutKind::kVb;
  options.auto_merge = false;
  auto ds_or = (*store)->OpenDataset("docs", options);
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 200; ++i) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(i));
    v.Set("payload", Value::String(std::string(200, 'x')));
    ASSERT_TRUE(ds->Insert(v).ok());
  }

  // The volume fills mid-flush: one physical page fits, the next write
  // gets ENOSPC.
  fault_fs.SetByteQuota(kPage + kPageTrailerBytes);
  Status st = ds->Flush();
  ASSERT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_GT(fault_fs.injected_errors(), 0u);
  EXPECT_TRUE(TempComponentFiles().empty()) << "orphan .cmp.tmp left behind";

  // Space frees (a reclaimer ran); the retried flush drains the same
  // sealed memtable — no acked write is lost.
  fault_fs.ClearByteQuota();
  ASSERT_TRUE(ds->Flush().ok());
  EXPECT_GE(ds->stats().io_retries, 1u);  // the capped retry did run
  Value record;
  ASSERT_TRUE(ds->Lookup(0, &record).ok());
  ASSERT_TRUE(ds->Lookup(199, &record).ok());

  // Same story mid-merge: the merge output tmp is unlinked on failure and
  // the inputs stay live.
  for (int64_t i = 1000; i < 1200; ++i) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(i));
    v.Set("payload", Value::String(std::string(200, 'y')));
    ASSERT_TRUE(ds->Insert(v).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  ASSERT_GE(ds->component_count(), 2u);
  const size_t components_before = ds->component_count();
  fault_fs.SetByteQuota(kPage + kPageTrailerBytes);
  st = ds->MergeAll();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(TempComponentFiles().empty()) << "orphan merge tmp left behind";
  EXPECT_EQ(ds->component_count(), components_before);
  ASSERT_TRUE(ds->Lookup(1100, &record).ok());
  fault_fs.ClearByteQuota();
  ASSERT_TRUE(ds->MergeAll().ok());
  EXPECT_EQ(ds->component_count(), 1u);

  // A fresh open over the real filesystem sees every acked write and no
  // leftovers.
  store->reset();
  StoreOptions plain = store_options;
  plain.fs = nullptr;
  auto reopened = Store::Open(plain);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(TempComponentFiles().empty());
  auto ds2 = (*reopened)->OpenDataset("docs", options);
  ASSERT_TRUE(ds2.ok()) << ds2.status().ToString();
  ASSERT_TRUE((*ds2)->Lookup(0, &record).ok());
  ASSERT_TRUE((*ds2)->Lookup(199, &record).ok());
  ASSERT_TRUE((*ds2)->Lookup(1199, &record).ok());
}

// Transient EIO blips during a flush are retried with backoff and
// succeed without poisoning the dataset; the retries are visible in
// DatasetStats.
TEST_F(FaultFsStoreTest, TransientEioRetriesSucceed) {
  FaultInjectionFs fault_fs;
  StoreOptions store_options;
  store_options.dir = dir_;
  store_options.page_size = kPage;
  store_options.cache_bytes = 512 * kPage;
  store_options.fs = &fault_fs;
  store_options.io_retry.max_retries = 4;
  store_options.io_retry.initial_backoff_micros = 100;
  store_options.io_retry.max_backoff_micros = 1000;
  auto store = Store::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  DatasetOptions options;
  options.layout = LayoutKind::kApax;
  options.auto_merge = false;
  auto ds_or = (*store)->OpenDataset("docs", options);
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  for (int64_t i = 0; i < 100; ++i) {
    Value v = Value::MakeObject();
    v.Set("id", Value::Int(i));
    v.Set("name", Value::String("r" + std::to_string(i)));
    ASSERT_TRUE(ds->Insert(v).ok());
  }

  // Two EIO blips against the component build; attempts 1 and 2 die,
  // attempt 3 goes through.
  FaultRule rule;
  rule.path_substring = ".cmp.tmp";
  rule.op = FaultOp::kWrite;
  rule.fail_after = 1;
  rule.max_failures = 2;
  fault_fs.AddRule(rule);
  ASSERT_TRUE(ds->Flush().ok());
  EXPECT_EQ(fault_fs.injected_errors(), 2u);
  DatasetStats stats = ds->stats();
  EXPECT_EQ(stats.io_retries, 2u);
  EXPECT_GT(stats.io_retry_backoff_micros, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
  EXPECT_TRUE(ds->background_error().ok());
  Value record;
  ASSERT_TRUE(ds->Lookup(42, &record).ok());
  EXPECT_EQ(record.Get("name").string_value(), "r42");
}

}  // namespace
}  // namespace lsmcol
