// Randomized fault-tolerance torture harness: each seed drives a dataset
// through ingest/delete/flush/merge under a seeded schedule of injected
// transient errors, ENOSPC quotas, and a mid-run simulated crash, then
// verifies the invariant the engine promises: every acknowledged write
// survives (with its exact value) or the failure was reported — never a
// silent loss, never a silently wrong result.
//
// Seeds are controlled by environment variables so CI shards and local
// repro runs (tools/run_torture.sh) use the same binary:
//   LSMCOL_TORTURE_SEED       run exactly this one seed
//   LSMCOL_TORTURE_SEED_BASE  first seed of a range (default 1)
//   LSMCOL_TORTURE_SEEDS      how many seeds to run (default 10)

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/storage/fault_injection_fs.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 4096;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

Value MakeRecord(int64_t key, const std::string& name) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(key));
  v.Set("name", Value::String(name));
  v.Set("pad", Value::String(std::string(64, 'p')));
  return v;
}

/// The reference model a run maintains alongside the dataset.
struct Model {
  /// key -> "name" of the last acknowledged insert.
  std::map<int64_t, std::string> confirmed;
  /// Keys whose last acknowledged op was a delete.
  std::set<int64_t> deleted;
  /// Keys whose last op errored: the engine made no promise, the key may
  /// hold the old value, the attempted one, or nothing.
  std::set<int64_t> unknown;

  void Acked(int64_t key, const std::string& name) {
    confirmed[key] = name;
    deleted.erase(key);
    unknown.erase(key);
  }
  void AckedDelete(int64_t key) {
    confirmed.erase(key);
    deleted.insert(key);
    unknown.erase(key);
  }
  void Errored(int64_t key) {
    confirmed.erase(key);
    deleted.erase(key);
    unknown.insert(key);
  }
};

/// Full-scan the dataset (must succeed: no checksum error may survive a
/// clean fault schedule) and check it against the model.
void VerifyModel(Dataset* ds, const Model& model, const std::string& what) {
  std::map<int64_t, std::string> scanned;
  auto cursor = ds->Scan(Projection::All());
  ASSERT_TRUE(cursor.ok()) << what << ": " << cursor.status().ToString();
  while (true) {
    auto ok = (*cursor)->Next();
    ASSERT_TRUE(ok.ok()) << what << ": " << ok.status().ToString();
    if (!*ok) break;
    Value v;
    Status st = (*cursor)->Record(&v);
    ASSERT_TRUE(st.ok()) << what << ": " << st.ToString();
    scanned[(*cursor)->key()] = v.Get("name").string_value();
  }
  for (const auto& [key, name] : model.confirmed) {
    auto it = scanned.find(key);
    ASSERT_NE(it, scanned.end())
        << what << ": acknowledged key " << key << " lost";
    EXPECT_EQ(it->second, name) << what << ": key " << key << " wrong value";
  }
  for (int64_t key : model.deleted) {
    EXPECT_EQ(scanned.count(key), 0u)
        << what << ": deleted key " << key << " resurrected";
  }
  // Any extra key must be one the model gave up on — otherwise the
  // engine invented data.
  for (const auto& [key, name] : scanned) {
    if (model.confirmed.count(key) == 0) {
      EXPECT_TRUE(model.unknown.count(key) > 0)
          << what << ": unexpected key " << key;
    }
  }
}

void RunSeed(uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const std::string dir =
      testing::TempDir() + "/torture_" + std::to_string(seed);
  const std::string crash_dir = dir + "_crash";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(crash_dir);
  std::mt19937_64 rng(seed);

  FaultInjectionFs fs;
  fs.SetTrackUnsynced(true);

  StoreOptions store_options;
  store_options.dir = dir;
  store_options.page_size = kPage;
  store_options.cache_bytes = 512 * kPage;
  store_options.fs = &fs;
  store_options.wal.enabled = true;  // acked => fsync-durable
  store_options.io_retry.max_retries = 3;
  store_options.io_retry.initial_backoff_micros = 50;
  store_options.io_retry.max_backoff_micros = 500;
  auto store = Store::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  static const LayoutKind kLayouts[] = {LayoutKind::kOpen, LayoutKind::kVb,
                                        LayoutKind::kApax, LayoutKind::kAmax};
  DatasetOptions options;
  options.layout = kLayouts[seed % 4];
  options.memtable_bytes = 2048;  // tiny: many flushes, rotations, merges
  auto ds_or = (*store)->OpenDataset("docs", options);
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;

  Model model;
  const int kOps = 160;
  int quota_ops_left = 0;
  for (int op = 0; op < kOps; ++op) {
    // ---- fault scheduling --------------------------------------------
    if (op % 13 == 5) {
      FaultRule rule;
      switch (rng() % 4) {
        case 0:
          rule.path_substring = ".cmp.tmp";
          rule.op = FaultOp::kWrite;
          break;
        case 1:
          rule.path_substring = ".wal";
          rule.op = FaultOp::kWrite;
          break;
        case 2:
          rule.path_substring = ".MANIFEST";
          rule.op = FaultOp::kRename;
          break;
        case 3:
          rule.path_substring = ".wal";
          rule.op = FaultOp::kCreate;
          break;
      }
      rule.fail_after = static_cast<int>(rng() % 2);
      rule.max_failures = 1 + static_cast<int>(rng() % 2);
      fs.AddRule(rule);
    }
    if (quota_ops_left > 0 && --quota_ops_left == 0) fs.ClearByteQuota();
    if (op % 37 == 11) {
      fs.SetByteQuota(rng() % 2000);
      quota_ops_left = 5;
    }

    // ---- one operation -----------------------------------------------
    const int64_t key = static_cast<int64_t>(rng() % 300);
    Status st;
    if (rng() % 10 == 0) {
      st = ds->Delete(key);
      if (st.ok()) {
        model.AckedDelete(key);
      } else {
        model.Errored(key);
      }
    } else {
      const std::string name =
          "s" + std::to_string(seed) + "_o" + std::to_string(op);
      st = ds->Insert(MakeRecord(key, name));
      if (st.ok()) {
        model.Acked(key, name);
      } else {
        model.Errored(key);
      }
    }
    if (!st.ok() && rng() % 2 == 0) {
      (void)ds->Flush();  // opportunistic recovery (rotates a wedged WAL)
    }

    // ---- mid-run simulated crash -------------------------------------
    if (op == kOps / 2) {
      // Materialize the post-crash disk image beside the live store and
      // verify every write acknowledged *so far* survives in it.
      ASSERT_TRUE(fs.CopySyncedSnapshot(dir, crash_dir).ok());
      ASSERT_TRUE(fs.CopySyncedSnapshot(dir + "/docs", crash_dir + "/docs")
                      .ok());
      StoreOptions crash_options = store_options;
      crash_options.dir = crash_dir;
      crash_options.fs = nullptr;  // plain filesystem, fresh cache
      auto crash_store = Store::Open(crash_options);
      ASSERT_TRUE(crash_store.ok()) << crash_store.status().ToString();
      auto crash_ds = (*crash_store)->OpenDataset("docs", options);
      ASSERT_TRUE(crash_ds.ok()) << crash_ds.status().ToString();
      VerifyModel(*crash_ds, model, "crash image @op " + std::to_string(op));
      std::filesystem::remove_all(crash_dir);
    }
  }

  // ---- quiesce and verify the live dataset ---------------------------
  fs.ClearRules();
  fs.ClearByteQuota();
  Status st;
  for (int attempt = 0; attempt < 3; ++attempt) {
    st = ds->Flush();
    if (st.ok()) break;
  }
  ASSERT_TRUE(st.ok()) << "flush after clearing faults: " << st.ToString();
  VerifyModel(ds, model, "live dataset");
  DatasetStats stats = ds->stats();
  EXPECT_EQ(stats.checksum_failures, 0u);  // faults were transient only
  EXPECT_EQ(stats.quarantined_components, 0u);
  store->reset();

  // ---- clean reopen over the real filesystem -------------------------
  StoreOptions plain = store_options;
  plain.fs = nullptr;
  auto reopened = Store::Open(plain);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto ds2 = (*reopened)->OpenDataset("docs", options);
  ASSERT_TRUE(ds2.ok()) << ds2.status().ToString();
  VerifyModel(*ds2, model, "reopened dataset");
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/docs")) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "orphan temp file " << entry.path();
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(crash_dir);
}

TEST(TortureTest, SeededFaultSchedules) {
  const uint64_t single = EnvU64("LSMCOL_TORTURE_SEED", 0);
  if (single != 0) {
    RunSeed(single);
    return;
  }
  const uint64_t base = EnvU64("LSMCOL_TORTURE_SEED_BASE", 1);
  const uint64_t count = EnvU64("LSMCOL_TORTURE_SEEDS", 10);
  for (uint64_t seed = base; seed < base + count; ++seed) {
    RunSeed(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace lsmcol
