// End-to-end damage torture across all four layouts: take a backup,
// let the media decay underneath a component, prove the scrubber finds
// and quarantines it (and that the quarantine is named in Health and
// survives a restart), repair it from the backup, and verify the full
// scan digest — including WAL-only acked writes — is bit-identical to
// the pre-corruption state. Also exercises the salvage extractor on a
// component with a damaged leaf.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/json/parser.h"
#include "src/storage/backup_manifest.h"
#include "src/storage/fault_injection_fs.h"
#include "src/store/backup.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

Value MakeRecord(int64_t id) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("name", Value::String("user_" + std::to_string(id)));
  v.Set("score", Value::Double(static_cast<double>(id) * 0.5));
  return v;
}

std::vector<std::pair<int64_t, std::string>> ScanDigest(Dataset* ds) {
  std::vector<std::pair<int64_t, std::string>> out;
  auto cursor = ds->Scan(Projection::All());
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  if (!cursor.ok()) return out;
  while (true) {
    auto ok = (*cursor)->Next();
    EXPECT_TRUE(ok.ok()) << ok.status().ToString();
    if (!ok.ok() || !*ok) break;
    Value v;
    Status st = (*cursor)->Record(&v);
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok()) break;
    out.emplace_back((*cursor)->key(), ToJson(v));
  }
  return out;
}

class ScrubTortureTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    const std::string base =
        testing::TempDir() + "/scrubtorture_" +
        std::string(LayoutKindName(GetParam())) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = base + "/store";
    backup_dir_ = base + "/backup";
    std::filesystem::remove_all(base);
  }
  void TearDown() override {
    std::filesystem::remove_all(
        std::filesystem::path(dir_).parent_path());
  }

  StoreOptions Options(FileSystem* fs) {
    StoreOptions options;
    options.dir = dir_;
    options.page_size = kPage;
    options.cache_bytes = 512 * kPage;
    options.fs = fs;
    options.wal.enabled = true;
    return options;
  }

  DatasetOptions DocOptions() {
    DatasetOptions options;
    options.layout = GetParam();
    options.auto_merge = false;
    return options;
  }

  std::string dir_;
  std::string backup_dir_;
};

// The acceptance torture: backup → latent read-side decay → scrub
// quarantines and names the component → media replaced → repair from
// the backup → digest identical to pre-corruption, zero acked-write
// loss, quarantine does not resurrect on restart.
TEST_P(ScrubTortureTest, BackupScrubRepairRoundtrip) {
  FaultInjectionFs fault_fs;
  auto store = Store::Open(Options(&fault_fs));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;

  // Component A — the only component the backup will hold.
  for (int64_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  ASSERT_TRUE((*store)->CreateBackup(backup_dir_).ok());

  // Find A's backup entry: its id tells us which live file will decay.
  auto catalog = ReadBackupManifest(backup_dir_, &fault_fs);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  std::string victim_basename;
  for (const BackupFileEntry& f : catalog->files) {
    if (f.kind == BackupFileKind::kComponent) {
      victim_basename =
          std::filesystem::path(f.rel_path).filename().string();
      break;
    }
  }
  ASSERT_FALSE(victim_basename.empty());

  // Life goes on after the backup: component B plus an acked-but-never-
  // flushed WAL tail. All of it must survive the repair untouched.
  for (int64_t i = 1000; i < 1080; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(ds->Flush().ok());
  for (int64_t i = 5000; i < 5020; ++i) {
    ASSERT_TRUE(ds->Insert(MakeRecord(i)).ok());
  }
  const auto want = ScanDigest(ds);
  ASSERT_EQ(want.size(), 250u);

  // Latent media decay on A: reads of its file return flipped bytes.
  FaultRule decay;
  decay.path_substring = victim_basename;
  decay.op = FaultOp::kRead;
  decay.flip_bit = true;
  decay.max_failures = -1;
  fault_fs.AddRule(decay);

  auto pass = (*store)->ScrubNow();
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_EQ(pass->damaged, 1u);

  // Health names the quarantined component.
  uint64_t victim_id = 0;
  {
    const auto health = (*store)->Health();
    ASSERT_EQ(health.size(), 1u);
    ASSERT_EQ(health[0].quarantined.size(), 1u);
    victim_id = health[0].quarantined[0].first;
    EXPECT_FALSE(health[0].quarantined[0].second.empty());
    EXPECT_EQ(health[0].scrub_damage_found, 1u);
    EXPECT_EQ(victim_basename,
              "docs_" + std::to_string(victim_id) + ".cmp");
  }

  // Media replaced: the flip rule goes away. The quarantine must NOT —
  // a restart reads it back from the manifest rather than silently
  // "healing" the dataset just because the component opens cleanly now.
  fault_fs.ClearRules();
  ASSERT_TRUE((*store)->Close().ok());
  store = Store::Open(Options(&fault_fs));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  ds = *ds_or;
  {
    const auto health = (*store)->Health();
    ASSERT_EQ(health.size(), 1u);
    ASSERT_EQ(health[0].quarantined.size(), 1u);
    EXPECT_EQ(health[0].quarantined[0].first, victim_id);
  }
  // A quarantined component fails scans fast rather than serving junk.
  {
    auto cursor = ds->Scan(Projection::All());
    if (cursor.ok()) {
      Status st = Status::OK();
      while (true) {
        auto ok = (*cursor)->Next();
        if (!ok.ok()) {
          st = ok.status();
          break;
        }
        if (!*ok) break;
      }
      EXPECT_FALSE(st.ok());
    }
  }

  // The operator repairs the component from the backup taken before
  // the damage; merges resume and the quarantine clears.
  ASSERT_TRUE(ds->RepairQuarantined(backup_dir_).ok());
  {
    const auto health = (*store)->Health();
    ASSERT_EQ(health.size(), 1u);
    EXPECT_TRUE(health[0].quarantined.empty());
    EXPECT_EQ(health[0].quarantined_components, 0u);
  }
  EXPECT_EQ(ScanDigest(ds), want);  // zero acked-write loss

  // And the repair itself is durable across a restart.
  ASSERT_TRUE((*store)->Close().ok());
  store = Store::Open(Options(&fault_fs));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  EXPECT_TRUE((*store)->Health()[0].quarantined.empty());
  EXPECT_EQ(ScanDigest(*ds_or), want);
}

// Repair without a usable backup fails cleanly and keeps the component
// quarantined; salvage then extracts everything the damage spared.
TEST_P(ScrubTortureTest, RepairRefusesStaleBackupAndSalvageRecovers) {
  std::string victim_path;
  std::vector<std::pair<int64_t, std::string>> want;
  {
    auto store = Store::Open(Options(nullptr));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto ds_or = (*store)->OpenDataset("docs", DocOptions());
    ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
    Dataset* ds = *ds_or;
    // Big enough to span several leaves — with padding the columnar
    // layouts can't compress away — so damage to one leaf leaves the
    // others extractable and never touches the meta/footer pages.
    for (int64_t i = 0; i < 3000; ++i) {
      Value v = MakeRecord(i);
      uint64_t h = static_cast<uint64_t>(i) * 2654435761u + 12345;
      std::string pad;
      for (int j = 0; j < 6; ++j) {
        pad += std::to_string(h % 997);
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
      }
      v.Set("pad", Value::String(pad));
      ASSERT_TRUE(ds->Insert(v).ok());
    }
    ASSERT_TRUE(ds->Flush().ok());
    want = ScanDigest(ds);
    // A backup that does NOT contain the component (empty dataset dir):
    // taken before any data existed is simulated by backing up a
    // different store; simplest honest variant — corrupt first, so the
    // backup refuses, then prove repair against a missing catalog fails.
    ASSERT_TRUE((*store)->Close().ok());
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/docs")) {
    if (entry.path().extension() == ".cmp") {
      victim_path = entry.path().string();
    }
  }
  ASSERT_FALSE(victim_path.empty());
  // Smash one mid-file page on disk.
  {
    std::fstream f(victim_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const auto bytes = std::filesystem::file_size(victim_path);
    ASSERT_GE(bytes / kPage, 8u) << "component too small to corrupt safely";
    const uint64_t target_page = (bytes / kPage) / 2;
    f.seekp(static_cast<std::streamoff>(target_page * kPage + 64));
    for (int i = 0; i < 128; ++i) f.put('\xee');
  }

  auto store = Store::Open(Options(nullptr));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds_or = (*store)->OpenDataset("docs", DocOptions());
  ASSERT_TRUE(ds_or.ok()) << ds_or.status().ToString();
  Dataset* ds = *ds_or;
  auto pass = (*store)->ScrubNow();
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  ASSERT_EQ(pass->damaged, 1u);

  // No backup was ever taken: repair fails, quarantine stays.
  EXPECT_FALSE(ds->RepairQuarantined(backup_dir_).ok());
  EXPECT_EQ((*store)->Health()[0].quarantined.size(), 1u);
  ASSERT_TRUE((*store)->Close().ok());

  // Salvage mode still extracts every readable leaf's records.
  SalvageResult result;
  std::vector<std::pair<int64_t, std::string>> got;
  Status st = SalvageComponentFile(
      victim_path, kPage,
      [&](int64_t key, const Value& record) -> Status {
        got.emplace_back(key, ToJson(record));
        return Status::OK();
      },
      &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(result.leaves_damaged, 1u);
  EXPECT_GT(result.records, 0u);
  EXPECT_LT(result.records, want.size());
  // Everything salvage emitted is bit-identical to the original data.
  size_t matched = 0;
  for (const auto& [key, json] : got) {
    ASSERT_GE(key, 0);
    ASSERT_LT(static_cast<size_t>(key), want.size());
    EXPECT_EQ(want[static_cast<size_t>(key)].first, key);
    EXPECT_EQ(want[static_cast<size_t>(key)].second, json);
    ++matched;
  }
  EXPECT_EQ(matched, got.size());
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, ScrubTortureTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

}  // namespace
}  // namespace lsmcol
