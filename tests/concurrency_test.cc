// Concurrency tests for the background flush/merge scheduler: memtable
// rotation, snapshots over sealed memtables, back-pressure, shutdown
// during background work, the stopped-scheduler inline fallback, and a
// writers-vs-readers stress run with background merges enabled. Built to
// run clean under ThreadSanitizer (the CI tsan job runs this suite).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/lsm/dataset.h"
#include "src/lsm/scheduler.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 8192;

Value MakeRecord(int64_t id) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("name", Value::String("user_" + std::to_string(id)));
  v.Set("score", Value::Double(static_cast<double>(id) * 0.5));
  Value nested = Value::MakeObject();
  nested.Set("level", Value::Int(id % 5));
  v.Set("meta", std::move(nested));
  return v;
}

/// Scan everything through a fresh snapshot; returns the sorted keys and
/// checks the cursor's ordering invariant on the way.
std::vector<int64_t> ScanKeys(Dataset* dataset) {
  std::vector<int64_t> keys;
  auto cursor = dataset->Scan(Projection::All());
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  if (!cursor.ok()) return keys;
  while (true) {
    auto ok = (*cursor)->Next();
    EXPECT_TRUE(ok.ok()) << ok.status().ToString();
    if (!ok.ok() || !*ok) break;
    if (!keys.empty()) {
      EXPECT_GT((*cursor)->key(), keys.back());
    }
    keys.push_back((*cursor)->key());
  }
  return keys;
}

class ConcurrencyTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/conc_" +
           std::string(LayoutKindName(GetParam())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoreOptions DefaultStoreOptions(int background_threads) {
    StoreOptions options;
    options.dir = dir_;
    options.page_size = kPage;
    options.cache_bytes = 512 * kPage;
    options.background_threads = background_threads;
    return options;
  }

  DatasetOptions SmallMemtableOptions() {
    DatasetOptions options;
    options.layout = GetParam();
    options.page_size = kPage;  // Store overwrites; standalone opens need it
    options.memtable_bytes = 8 * 1024;  // rotate every few dozen records
    options.amax_max_records = 500;
    return options;
  }

  std::string dir_;
};

TEST_P(ConcurrencyTest, BackgroundFlushKeepsWritePathNonBlocking) {
  auto store = Store::Open(DefaultStoreOptions(2));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto ds = (*store)->OpenDataset("docs", SmallMemtableOptions());
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  constexpr int64_t kRecords = 600;
  for (int64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE((*ds)->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE((*ds)->Flush().ok());
  Status st = (*ds)->WaitForBackgroundWork();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE((*ds)->stats().flushes, 2u);
  EXPECT_GE((*ds)->component_count(), 1u);
  EXPECT_EQ((*ds)->immutable_memtable_count(), 0u);
  std::vector<int64_t> keys = ScanKeys(*ds);
  ASSERT_EQ(keys.size(), static_cast<size_t>(kRecords));
  for (int64_t i = 0; i < kRecords; ++i) EXPECT_EQ(keys[i], i);
}

TEST_P(ConcurrencyTest, SnapshotIncludesSealedMemtables) {
  // One worker, blocked: rotated memtables pile up as immutables, and
  // reads must still see their data (the snapshot pins them).
  FlushMergeScheduler scheduler(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ASSERT_TRUE(scheduler.Schedule([opened] { opened.wait(); }));

  BufferCache cache(512 * kPage, kPage);
  DatasetOptions options = SmallMemtableOptions();
  options.dir = dir_;
  options.scheduler = &scheduler;
  options.max_immutable_memtables = 8;  // no back-pressure in this test
  auto ds = Dataset::Open(options, &cache);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  int64_t inserted = 0;
  while ((*ds)->immutable_memtable_count() < 2 && inserted < 10000) {
    ASSERT_TRUE((*ds)->Insert(MakeRecord(inserted)).ok());
    ++inserted;
  }
  ASSERT_GE((*ds)->immutable_memtable_count(), 2u);
  EXPECT_EQ((*ds)->component_count(), 0u);  // nothing flushed yet

  Snapshot::Ref snapshot = (*ds)->GetSnapshot();
  EXPECT_GE(snapshot->immutable_memtable_count(), 2u);
  std::vector<int64_t> keys = ScanKeys(ds->get());
  ASSERT_EQ(keys.size(), static_cast<size_t>(inserted));
  Value out;
  ASSERT_TRUE((*ds)->Lookup(0, &out).ok());  // lives in a sealed memtable
  EXPECT_EQ(out.Get("id").int_value(), 0);

  gate.set_value();
  Status st = (*ds)->WaitForBackgroundWork();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE((*ds)->component_count(), 1u);
  // The pre-flush snapshot still answers from its pinned memtables.
  ASSERT_TRUE(snapshot->Lookup(0, &out).ok());
  EXPECT_EQ(keys.size(), ScanKeys(ds->get()).size());
  ds->reset();
  scheduler.Stop();
}

TEST_P(ConcurrencyTest, BackPressureStallsWritersUntilFlushCatchesUp) {
  FlushMergeScheduler scheduler(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ASSERT_TRUE(scheduler.Schedule([opened] { opened.wait(); }));

  BufferCache cache(512 * kPage, kPage);
  DatasetOptions options = SmallMemtableOptions();
  options.dir = dir_;
  options.scheduler = &scheduler;
  options.max_immutable_memtables = 2;
  options.auto_merge = false;  // isolate the immutable-count stall
  auto ds = Dataset::Open(options, &cache);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  constexpr int64_t kRecords = 2000;  // enough for > 2 rotations
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int64_t i = 0; i < kRecords; ++i) {
      Status st = (*ds)->Insert(MakeRecord(i));
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    writer_done.store(true);
  });

  // The writer must hit the immutable cap and stall there (the single
  // worker is blocked on the gate, so nothing drains).
  while ((*ds)->immutable_memtable_count() < 2) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(writer_done.load());
  EXPECT_LE((*ds)->immutable_memtable_count(), 2u);
  EXPECT_GE((*ds)->stats().write_stalls, 1u);

  gate.set_value();  // unblock the worker; the drain releases the writer
  writer.join();
  EXPECT_TRUE(writer_done.load());
  ASSERT_TRUE((*ds)->Flush().ok());
  Status st = (*ds)->WaitForBackgroundWork();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(ScanKeys(ds->get()).size(), static_cast<size_t>(kRecords));
  ds->reset();
  scheduler.Stop();
}

TEST_P(ConcurrencyTest, CloseDuringBackgroundFlushDrainsSealedMemtables) {
  constexpr int64_t kRecords = 500;
  {
    auto store = Store::Open(DefaultStoreOptions(2));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto ds = (*store)->OpenDataset("docs", SmallMemtableOptions());
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    for (int64_t i = 0; i < kRecords; ++i) {
      ASSERT_TRUE((*ds)->Insert(MakeRecord(i)).ok());
    }
    // No Flush(), no WaitForBackgroundWork(): destruction must wait for
    // in-flight tasks, drain every sealed memtable, and lose only the
    // active memtable.
    store->reset();
  }
  auto reopened = Store::Open(DefaultStoreOptions(0));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto ds = (*reopened)->OpenDataset("docs", SmallMemtableOptions());
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  std::vector<int64_t> keys = ScanKeys(*ds);
  // A contiguous prefix survived: rotation seals whole key ranges in
  // insertion order and the drain flushes all of them.
  EXPECT_LE(keys.size(), static_cast<size_t>(kRecords));
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], static_cast<int64_t>(i));
  }
  Value out;
  if (!keys.empty()) {
    ASSERT_TRUE((*ds)->Lookup(keys.back(), &out).ok());
    EXPECT_EQ(out.Get("name").string_value(),
              "user_" + std::to_string(keys.back()));
  }
}

TEST_P(ConcurrencyTest, StoppedSchedulerFallsBackToInlineFlush) {
  FlushMergeScheduler scheduler(1);
  scheduler.Stop();  // writers must fall back to the synchronous path

  BufferCache cache(512 * kPage, kPage);
  DatasetOptions options = SmallMemtableOptions();
  options.dir = dir_;
  options.scheduler = &scheduler;
  auto ds = Dataset::Open(options, &cache);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  constexpr int64_t kRecords = 300;
  for (int64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE((*ds)->Insert(MakeRecord(i)).ok());
  }
  ASSERT_TRUE((*ds)->Flush().ok());
  EXPECT_EQ((*ds)->immutable_memtable_count(), 0u);
  EXPECT_GE((*ds)->component_count(), 1u);
  EXPECT_EQ(ScanKeys(ds->get()).size(), static_cast<size_t>(kRecords));
}

TEST_P(ConcurrencyTest, StressWritersReadersWithBackgroundMerges) {
  auto store = Store::Open(DefaultStoreOptions(3));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  DatasetOptions options = SmallMemtableOptions();
  options.max_components = 3;  // merge often
  auto open = (*store)->OpenDataset("docs", options);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  Dataset* ds = *open;

  constexpr int kWriters = 4;
  constexpr int64_t kPerWriter = 400;
  std::atomic<int> writers_left{kWriters};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      // Disjoint key ranges; writer 0 also revisits its range with
      // upserts so reconciliation (newest wins) is exercised under load.
      const int64_t base = static_cast<int64_t>(w) * kPerWriter;
      for (int64_t i = 0; i < kPerWriter; ++i) {
        Status st = ds->Insert(MakeRecord(base + i));
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
      if (w == 0) {
        for (int64_t i = 0; i < kPerWriter; i += 3) {
          Status st = ds->Insert(MakeRecord(base + i));
          ASSERT_TRUE(st.ok()) << st.ToString();
        }
      }
      writers_left.fetch_sub(1);
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(r) + 7);
      size_t last_count = 0;
      while (writers_left.load() > 0) {
        // Full scans against a snapshot: keys strictly increasing, counts
        // monotone over time (nothing is ever deleted here).
        std::vector<int64_t> keys = ScanKeys(ds);
        ASSERT_GE(keys.size(), last_count);
        last_count = keys.size();
        // Random point lookups of keys that must exist once scanned.
        if (!keys.empty()) {
          const int64_t key =
              keys[static_cast<size_t>(rng.Uniform(keys.size()))];
          Value out;
          Status st = ds->Lookup(key, &out);
          ASSERT_TRUE(st.ok()) << "key " << key << ": " << st.ToString();
          ASSERT_EQ(out.Get("id").int_value(), key);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_TRUE(ds->Flush().ok());
  Status st = ds->WaitForBackgroundWork();
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<int64_t> keys = ScanKeys(ds);
  ASSERT_EQ(keys.size(), static_cast<size_t>(kWriters) * kPerWriter);
  EXPECT_GE(ds->stats().merges, 1u);
  ASSERT_TRUE(ds->MergeAll().ok());
  EXPECT_EQ(ds->component_count(), 1u);
  EXPECT_EQ(ScanKeys(ds).size(), keys.size());
  Status close = (*store)->Close();
  EXPECT_TRUE(close.ok()) << close.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, ConcurrencyTest,
                         ::testing::Values(LayoutKind::kOpen, LayoutKind::kVb,
                                           LayoutKind::kApax,
                                           LayoutKind::kAmax),
                         [](const auto& info) {
                           return std::string(LayoutKindName(info.param));
                         });

// --- Option validation for the new knobs -------------------------------

TEST(ConcurrencyOptionsTest, ValidateDatasetOptionsNamesImmutableCap) {
  DatasetOptions options;
  options.dir = "/tmp/x";
  options.max_immutable_memtables = 0;
  Status st = ValidateDatasetOptions(options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("max_immutable_memtables"), std::string::npos)
      << st.ToString();
}

TEST(ConcurrencyOptionsTest, ValidateStoreOptionsNamesBackgroundThreads) {
  StoreOptions options;
  options.dir = "/tmp/x";
  options.background_threads = -1;
  Status st = ValidateStoreOptions(options);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("background_threads"), std::string::npos)
      << st.ToString();
  options.background_threads = 1000;
  EXPECT_FALSE(ValidateStoreOptions(options).ok());
}

TEST(StoreConcurrencyTest, ConcurrentOpenGetListAndClose) {
  // Regression: the store used to have no lock over its dataset map and
  // discovery list, so concurrent OpenDataset/GetDataset/ListDatasets
  // raced on them (and a racing Close could miss a dataset mid-insert).
  // Same-name opens must also converge on a single instance.
  const std::string dir = testing::TempDir() + "/store_concurrent_open";
  std::filesystem::remove_all(dir);
  StoreOptions options;
  options.dir = dir;
  options.page_size = kPage;
  options.cache_bytes = 512 * kPage;
  options.background_threads = 2;
  auto store = Store::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  constexpr int kThreads = 6;
  constexpr int kNames = 3;
  std::array<std::atomic<Dataset*>, kNames> seen{};
  std::atomic<bool> mismatch{false};
  std::atomic<bool> stop_reading{false};
  std::thread reader([&] {
    // Hammer the read-side map accessors while opens mutate the map.
    while (!stop_reading.load()) {
      (void)(*store)->GetDataset("d0");
      (void)(*store)->ListDatasets();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const int name_idx = t % kNames;
      DatasetOptions dataset_options;
      dataset_options.layout = LayoutKind::kVb;
      auto dataset = (*store)->OpenDataset("d" + std::to_string(name_idx),
                                           dataset_options);
      if (!dataset.ok()) {
        mismatch.store(true);
        return;
      }
      Dataset* expected = nullptr;
      if (!seen[name_idx].compare_exchange_strong(expected, *dataset) &&
          expected != *dataset) {
        mismatch.store(true);
      }
      Value v = Value::MakeObject();
      v.Set("id", Value::Int(t));
      if (!(*dataset)->Insert(v).ok()) mismatch.store(true);
    });
  }
  for (std::thread& t : threads) t.join();
  stop_reading.store(true);
  reader.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ((*store)->ListDatasets(),
            (std::vector<std::string>{"d0", "d1", "d2"}));
  EXPECT_TRUE((*store)->Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(SchedulerTest, ConcurrentStopJoinsWorkersExactlyOnce) {
  // Regression: two racing Stop() calls used to iterate the same thread
  // vector and join each worker twice (std::thread::join on a joined
  // thread is UB). Exactly one caller now adopts the workers under the
  // scheduler mutex; the others return once the queue is drained.
  FlushMergeScheduler scheduler(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler.Schedule([&] { ran.fetch_add(1); }));
  }
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { scheduler.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(scheduler.tasks_run(), 8u);
  EXPECT_FALSE(scheduler.Schedule([&] { ran.fetch_add(1); }));
}

TEST(SchedulerTest, RunsTasksAndStopDrains) {
  FlushMergeScheduler scheduler(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(scheduler.Schedule([&] { ran.fetch_add(1); }));
  }
  scheduler.Stop();  // drains the queue before joining
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(scheduler.tasks_run(), 16u);
  EXPECT_FALSE(scheduler.Schedule([&] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace lsmcol
