// End-to-end validation of the paper's headline *shapes* at test scale:
// storage orderings (Fig. 12a), I/O selectivity of AMAX (Fig. 14/16),
// engine equivalence plus pipeline behaviour (Fig. 10), and robustness
// against corrupted component files.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/datagen/datagen.h"
#include <fstream>
#include "src/query/engine.h"

namespace lsmcol {
namespace {

constexpr size_t kPage = 32 * 1024;

struct BuiltDataset {
  std::unique_ptr<BufferCache> cache;
  std::unique_ptr<Dataset> dataset;
};

BuiltDataset Build(const std::string& dir, Workload w, LayoutKind layout,
                   uint64_t records) {
  std::filesystem::create_directories(dir);
  BuiltDataset out;
  out.cache = std::make_unique<BufferCache>(4096 * kPage, kPage);
  DatasetOptions options;
  options.layout = layout;
  options.dir = dir;
  options.name = std::string(WorkloadName(w)) + LayoutKindName(layout);
  options.page_size = kPage;
  options.memtable_bytes = 1u << 20;
  options.amax_max_records = 2000;
  auto ds = Dataset::Create(options, out.cache.get());
  LSMCOL_CHECK(ds.ok());
  out.dataset = std::move(*ds);
  Rng rng(42);
  for (uint64_t i = 0; i < records; ++i) {
    LSMCOL_CHECK_OK(
        out.dataset->Insert(MakeRecord(w, static_cast<int64_t>(i), &rng)));
  }
  LSMCOL_CHECK_OK(out.dataset->Flush());
  return out;
}

class ShapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/shapes_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ShapeTest, SensorsStorageOrderingMatchesFig12) {
  // Numeric data: Open > VB > APAX >= AMAX, with a sizable columnar win.
  const uint64_t n = 600;
  auto open = Build(dir_, Workload::kSensors, LayoutKind::kOpen, n);
  auto vb = Build(dir_, Workload::kSensors, LayoutKind::kVb, n);
  auto apax = Build(dir_, Workload::kSensors, LayoutKind::kApax, n);
  auto amax = Build(dir_, Workload::kSensors, LayoutKind::kAmax, n);
  EXPECT_GT(open.dataset->OnDiskBytes(), vb.dataset->OnDiskBytes());
  EXPECT_GT(vb.dataset->OnDiskBytes(), apax.dataset->OnDiskBytes());
  EXPECT_GE(apax.dataset->OnDiskBytes() * 5, amax.dataset->OnDiskBytes() * 4);
  // Columnar at least 2x smaller than Open on numeric data.
  EXPECT_GT(open.dataset->OnDiskBytes(), 2 * amax.dataset->OnDiskBytes());
}

TEST_F(ShapeTest, AmaxCountStarReadsOnlyPageZeros) {
  const uint64_t n = 4000;
  auto amax = Build(dir_, Workload::kTweet2, LayoutKind::kAmax, n);
  QueryPlan count = [] {
    QueryPlan p;
    p.aggregates.push_back(AggSpec::CountStar());
    return p;
  }();
  amax.cache->Clear();
  amax.cache->ResetStats();
  auto result = RunCompiled(amax.dataset.get(), count);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int_value(), static_cast<int64_t>(n));
  const uint64_t count_bytes = amax.cache->stats().bytes_read;

  // A text-column query must read strictly more.
  QueryPlan text_query;
  text_query.aggregates.push_back(AggSpec::Count(Expr::Field({"text"})));
  amax.cache->Clear();
  amax.cache->ResetStats();
  ASSERT_TRUE(RunCompiled(amax.dataset.get(), text_query).ok());
  EXPECT_GT(amax.cache->stats().bytes_read, 2 * count_bytes);

  // APAX reads everything either way (whole leaf pages).
  auto apax = Build(dir_, Workload::kTweet2, LayoutKind::kApax, n);
  apax.cache->Clear();
  apax.cache->ResetStats();
  ASSERT_TRUE(RunCompiled(apax.dataset.get(), count).ok());
  const uint64_t apax_count_bytes = apax.cache->stats().bytes_read;
  EXPECT_GT(apax_count_bytes, 4 * count_bytes);
}

TEST_F(ShapeTest, EnginesAgreeOnEveryWorkload) {
  for (Workload w : {Workload::kCell, Workload::kSensors, Workload::kWos}) {
    auto built = Build(dir_ + "/" + WorkloadName(w), w, LayoutKind::kAmax, 300);
    QueryPlan plan;
    plan.aggregates.push_back(AggSpec::CountStar());
    auto interp = RunInterpreted(built.dataset.get(), plan);
    auto comp = RunCompiled(built.dataset.get(), plan);
    ASSERT_TRUE(interp.ok());
    ASSERT_TRUE(comp.ok());
    EXPECT_EQ(interp->rows[0][0].int_value(), 300);
    EXPECT_EQ(comp->rows[0][0].int_value(), 300);
  }
}

TEST_F(ShapeTest, WosUnionQueriesAgreeAcrossLayouts) {
  // The wos Q3 pattern over all four layouts must produce identical rows.
  std::vector<std::vector<std::vector<Value>>> all_rows;
  for (LayoutKind layout : {LayoutKind::kOpen, LayoutKind::kVb,
                            LayoutKind::kApax, LayoutKind::kAmax}) {
    auto built = Build(dir_ + "/" + LayoutKindName(layout), Workload::kWos, layout,
                       400);
    std::vector<std::string> country_path = {
        "static_data", "fullrecord_metadata", "addresses", "address_name",
        "address_spec", "country"};
    std::vector<std::string> addr_path = {
        "static_data", "fullrecord_metadata", "addresses", "address_name"};
    QueryPlan plan;
    plan.pre_filter = Expr::And(
        Expr::IsArray(Expr::Field(addr_path)),
        Expr::ArrayContains(Expr::ArrayDistinct(Expr::Field(country_path)),
                            Expr::Str("USA")));
    plan.unnests.push_back(
        {Expr::ArrayDistinct(Expr::Field(country_path)), "c"});
    plan.filter =
        Expr::Compare(Expr::CmpOp::kNe, Expr::Var("c"), Expr::Str("USA"));
    plan.group_keys.push_back(Expr::Var("c"));
    plan.aggregates.push_back(AggSpec::CountStar());
    plan.order_by = 1;
    plan.limit = 10;
    auto result = RunCompiled(built.dataset.get(), plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->rows.size(), 0u);
    all_rows.push_back(result->rows);
  }
  for (size_t i = 1; i < all_rows.size(); ++i) {
    ASSERT_EQ(all_rows[i].size(), all_rows[0].size()) << i;
    for (size_t r = 0; r < all_rows[0].size(); ++r) {
      EXPECT_TRUE(ValueEquivalent(all_rows[i][r][0], all_rows[0][r][0]));
      EXPECT_TRUE(all_rows[i][r][1].Equals(all_rows[0][r][1]));
    }
  }
}

TEST_F(ShapeTest, CorruptComponentFileIsRejectedNotCrashed) {
  auto built = Build(dir_, Workload::kCell, LayoutKind::kAmax, 500);
  ASSERT_GE(built.dataset->component_count(), 1u);
  const std::string path = built.dataset->component(0).path();
  built.dataset.reset();  // release the file

  // Flip bytes in the footer page.
  {
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) - kPage);
  }
  BufferCache cache(64 * kPage, kPage);
  auto reopened = Component::Open(path, &cache, kPage);
  EXPECT_FALSE(reopened.ok());
}

TEST_F(ShapeTest, TruncatedLeafPayloadSurfacesCorruption) {
  // A valid footer but a mangled leaf body must fail with Corruption when
  // the leaf is read, not crash.
  auto built = Build(dir_, Workload::kCell, LayoutKind::kVb, 2000);
  const std::string path = built.dataset->component(0).path();
  built.dataset.reset();
  {
    // Zero the first leaf page (offset 0), leaving the index/footer valid.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    std::vector<char> zeros(kPage, 0);
    f.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  BufferCache cache(64 * kPage, kPage);
  auto component = Component::Open(path, &cache, kPage);
  ASSERT_TRUE(component.ok());  // metadata intact
  RowComponentCursor cursor(component->get());
  auto ok = cursor.Next();
  EXPECT_FALSE(ok.ok());  // decompression/decoding fails cleanly
}

}  // namespace
}  // namespace lsmcol
