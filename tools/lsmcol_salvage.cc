// lsmcol_salvage: extract the still-readable records of a damaged
// component file.
//
//   lsmcol_salvage <component.cmp> [--page-size N] [--out FILE]
//
// Opens the file in salvage mode (damage never quarantines anything),
// probes every leaf, and prints one JSON object per readable record —
// {"key": <pk>, "record": <value>} — to --out (default stdout). A
// summary (leaves probed / damaged, records recovered) goes to stderr,
// and the exit code is 0 only when every leaf was readable, so scripts
// can tell a clean extraction from a partial one.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/json/parser.h"
#include "src/json/value.h"
#include "src/store/backup.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <component.cmp> [--page-size N] [--out FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string out_path;
  size_t page_size = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--page-size") == 0 && i + 1 < argc) {
      page_size = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty() || page_size == 0) return Usage(argv[0]);

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "lsmcol_salvage: cannot open %s for writing\n",
                   out_path.c_str());
      return 2;
    }
  }

  lsmcol::SalvageResult result;
  lsmcol::Status st = lsmcol::SalvageComponentFile(
      path, page_size,
      [&](int64_t key, const lsmcol::Value& record) -> lsmcol::Status {
        const std::string line = "{\"key\": " + std::to_string(key) +
                                 ", \"record\": " + lsmcol::ToJson(record) +
                                 "}\n";
        if (std::fwrite(line.data(), 1, line.size(), out) != line.size()) {
          return lsmcol::Status::IOError("short write to output");
        }
        return lsmcol::Status::OK();
      },
      &result);
  if (out != stdout) std::fclose(out);

  if (!st.ok()) {
    std::fprintf(stderr, "lsmcol_salvage: %s\n", st.message().c_str());
    return 2;
  }
  std::fprintf(stderr,
               "lsmcol_salvage: %llu/%llu leaves readable (%llu damaged), "
               "%llu records recovered\n",
               static_cast<unsigned long long>(result.leaves_readable),
               static_cast<unsigned long long>(result.leaves_total),
               static_cast<unsigned long long>(result.leaves_damaged),
               static_cast<unsigned long long>(result.records));
  return result.leaves_damaged == 0 ? 0 : 1;
}
