#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over every first-party source file
# using a compile_commands.json exported by CMake.
#
# Usage: tools/run_clang_tidy.sh [--require] [build-dir]
#   build-dir  directory holding compile_commands.json; defaults to the
#              first of build-tidy/ or build/ that has one.
#   --require  fail (exit 1) when clang-tidy is unavailable instead of
#              skipping; CI passes this, local GCC-only setups don't.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
REQUIRE=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --require) REQUIRE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  if [ "$REQUIRE" -eq 1 ]; then
    echo "FAIL: $CLANG_TIDY not found and --require was given" >&2
    exit 1
  fi
  echo "SKIP: $CLANG_TIDY not found"
  exit 0
fi

if [ -z "$BUILD_DIR" ]; then
  for candidate in "$ROOT/build-tidy" "$ROOT/build"; do
    if [ -f "$candidate/compile_commands.json" ]; then
      BUILD_DIR="$candidate"
      break
    fi
  done
fi
if [ -z "$BUILD_DIR" ] || [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "FAIL: no compile_commands.json; configure first, e.g." >&2
  echo "  cmake --preset tidy" >&2
  exit 1
fi

# src/ only: tests and benches are gtest/benchmark-heavy and would drown
# the signal; the library is where tidy findings pay for themselves.
mapfile -t sources < <(cd "$ROOT" && find src -name '*.cc' | sort)
echo "clang-tidy over ${#sources[@]} files (build dir: $BUILD_DIR)"

failures=0
for src in "${sources[@]}"; do
  if ! "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$ROOT/$src"; then
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "clang-tidy: $failures file(s) with errors" >&2
  exit 1
fi
echo "clang-tidy: clean"
