#!/usr/bin/env bash
# clang-format check (config: .clang-format) over *changed* files only:
# the pre-existing tree was formatted by hand and wholesale reformatting
# would destroy blame, so the gate holds the line on new work instead.
#
# Usage: tools/check_format.sh [--require] [base-ref]
#   base-ref   diff base; defaults to origin/main when it exists, else
#              the first commit reachable from HEAD.
#   --require  fail (exit 1) when clang-format is unavailable instead of
#              skipping; CI passes this, local GCC-only setups don't.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
REQUIRE=0
BASE=""
for arg in "$@"; do
  case "$arg" in
    --require) REQUIRE=1 ;;
    *) BASE="$arg" ;;
  esac
done

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  if [ "$REQUIRE" -eq 1 ]; then
    echo "FAIL: $CLANG_FORMAT not found and --require was given" >&2
    exit 1
  fi
  echo "SKIP: $CLANG_FORMAT not found"
  exit 0
fi

cd "$ROOT"
if [ -z "$BASE" ]; then
  if git rev-parse --verify --quiet origin/main >/dev/null; then
    BASE="$(git merge-base HEAD origin/main)"
  else
    BASE="$(git rev-list --max-parents=0 HEAD | tail -1)"
  fi
fi

mapfile -t changed < <(git diff --name-only --diff-filter=ACMR "$BASE" -- \
                         'src/*.cc' 'src/*.h' 'tests/*.cc' 'bench/*.cc' \
                         'examples/*.cc' 'tools/negative/*.cc')
if [ "${#changed[@]}" -eq 0 ]; then
  echo "clang-format: no changed C++ files vs $BASE"
  exit 0
fi

echo "clang-format over ${#changed[@]} changed file(s) vs $BASE"
failures=0
for f in "${changed[@]}"; do
  [ -f "$f" ] || continue
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f"; then
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "clang-format: $failures file(s) need formatting" >&2
  echo "fix with: $CLANG_FORMAT -i <file>" >&2
  exit 1
fi
echo "clang-format: clean"
