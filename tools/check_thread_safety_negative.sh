#!/usr/bin/env bash
# Negative harness for the clang thread-safety gate: proves the analysis
# actually rejects the violation classes the annotations are supposed to
# catch. A misconfigured gate (wrong flags, no-op'd macros, missing
# include) passes everything — this script fails CI in exactly that case.
#
# For each deliberately broken TU in tools/negative/ the TU must
#   1. compile WITHOUT the analysis flags (the bug is a locking bug, not
#      a C++ error), and
#   2. FAIL to compile WITH the analysis flags.
# The control TU must pass both.
#
# Usage: tools/check_thread_safety_negative.sh [--require]
#   --require  fail (exit 1) when clang is unavailable instead of
#              skipping; CI passes this, local GCC-only setups don't.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLANGXX="${CLANGXX:-clang++}"
REQUIRE=0
for arg in "$@"; do
  case "$arg" in
    --require) REQUIRE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  if [ "$REQUIRE" -eq 1 ]; then
    echo "FAIL: $CLANGXX not found and --require was given" >&2
    exit 1
  fi
  echo "SKIP: $CLANGXX not found; thread-safety negative checks need clang"
  exit 0
fi

BASE_FLAGS=(-std=c++20 -fsyntax-only "-I$ROOT")
ANALYSIS_FLAGS=(-Wthread-safety -Wthread-safety-beta
                -Werror=thread-safety -Werror=thread-safety-beta)

failures=0

compile() {  # compile <tu> <flags...>
  local tu="$1"; shift
  "$CLANGXX" "${BASE_FLAGS[@]}" "$@" "$tu" 2>/dev/null
}

# Control: correct code must pass with and without the analysis. This
# also proves the flags and include path are wired correctly, so the
# "expected failure" results below are meaningful.
control="$ROOT/tools/negative/control.cc"
if ! compile "$control"; then
  echo "FAIL: control TU does not compile at all: $control" >&2
  failures=$((failures + 1))
elif ! compile "$control" "${ANALYSIS_FLAGS[@]}"; then
  echo "FAIL: control TU rejected by the analysis (flags broken?): $control" >&2
  failures=$((failures + 1))
else
  echo "ok: control passes with analysis enabled"
fi

for tu in "$ROOT"/tools/negative/*.cc; do
  [ "$tu" = "$control" ] && continue
  name="$(basename "$tu")"
  if ! compile "$tu"; then
    echo "FAIL: $name must be valid C++ without the analysis flags" >&2
    failures=$((failures + 1))
    continue
  fi
  if compile "$tu" "${ANALYSIS_FLAGS[@]}"; then
    echo "FAIL: $name compiled clean — the analysis missed the violation" >&2
    failures=$((failures + 1))
  else
    echo "ok: $name rejected by the analysis"
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "$failures negative-check failure(s)" >&2
  exit 1
fi
echo "thread-safety negative harness: all checks passed"
