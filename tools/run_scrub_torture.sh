#!/usr/bin/env bash
# One-command reproduction of the scrub/backup/repair torture pipeline
# (tests/scrub_torture_test.cc + tests/backup_test.cc): backup a live
# store, decay a component underneath it, scrub-quarantine, repair from
# the backup, and verify zero acked-write loss — across all four layouts.
#
#   tools/run_scrub_torture.sh             # full pipeline, all layouts
#   tools/run_scrub_torture.sh <filter>    # gtest filter, e.g. '*AMAX*'
#
# Builds the suites if needed (reusing ./build when configured, else an
# ASan/UBSan tree matching the CI scrub-torture job).
set -euo pipefail

FILTER="${1-*}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  BUILD="$ROOT/build-torture"
  cmake -B "$BUILD" -S "$ROOT" -DLSMCOL_SANITIZE=address,undefined \
    -DLSMCOL_BUILD_BENCHES=OFF -DLSMCOL_BUILD_EXAMPLES=OFF
fi
cmake --build "$BUILD" -j --target scrub_torture_test backup_test scrub_test

export ASAN_OPTIONS="${ASAN_OPTIONS-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS-halt_on_error=1}"
"$BUILD/tests/scrub_torture_test" --gtest_filter="$FILTER"
"$BUILD/tests/backup_test" --gtest_filter="$FILTER"
"$BUILD/tests/scrub_test" --gtest_filter="$FILTER"
