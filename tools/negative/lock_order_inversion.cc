// Deliberately broken: acquires two mutexes against their declared
// ACQUIRED_BEFORE order. tools/check_thread_safety_negative.sh expects
// clang's thread-safety analysis (the -beta variant carries the
// acquired_before/after checks) to REJECT this TU; if it compiles clean
// under the analysis flags, the ordering annotations have silently
// stopped working.

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace lsmcol_negative {

class Inverted {
 public:
  Inverted() : first_(lsmcol::MutexRank::kStore),
               second_(lsmcol::MutexRank::kWal) {}

  // BROKEN: first_ is declared acquired-before second_, but this takes
  // them in the opposite order (the runtime rank checker would abort
  // here too).
  void Wrong() LSMCOL_EXCLUDES(first_, second_) {
    second_.Lock();
    first_.Lock();
    first_.Unlock();
    second_.Unlock();
  }

 private:
  lsmcol::Mutex first_ LSMCOL_ACQUIRED_BEFORE(second_);
  lsmcol::Mutex second_;
};

void Drive() {
  Inverted i;
  i.Wrong();
}

}  // namespace lsmcol_negative
