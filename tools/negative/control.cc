// Negative-harness control TU: correct lock discipline that must compile
// WITH the thread-safety analysis flags warning-free. If this file fails,
// the harness's flags or include paths are broken — not the analysis —
// and every "expected failure" below it would be meaningless.

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace lsmcol_negative {

class Correct {
 public:
  Correct() : first_(lsmcol::MutexRank::kStore),
              second_(lsmcol::MutexRank::kWal) {}

  void Increment() LSMCOL_EXCLUDES(first_) {
    lsmcol::MutexLock lock(&first_);
    IncrementLocked();
  }

  void OrderedPair() LSMCOL_EXCLUDES(first_, second_) {
    first_.Lock();
    second_.Lock();
    second_.Unlock();
    first_.Unlock();
  }

 private:
  void IncrementLocked() LSMCOL_REQUIRES(first_) { ++value_; }

  lsmcol::Mutex first_ LSMCOL_ACQUIRED_BEFORE(second_);
  lsmcol::Mutex second_;
  int value_ LSMCOL_GUARDED_BY(first_) = 0;
};

void Drive() {
  Correct c;
  c.Increment();
  c.OrderedPair();
}

}  // namespace lsmcol_negative
