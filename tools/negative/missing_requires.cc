// Deliberately broken: calls a REQUIRES(mu_) helper without holding mu_.
// tools/check_thread_safety_negative.sh expects clang's thread-safety
// analysis to REJECT this TU; if it compiles clean under the analysis
// flags, the annotation machinery has silently stopped working.

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace lsmcol_negative {

class Queue {
 public:
  Queue() : mu_(lsmcol::MutexRank::kLeaf) {}

  // BROKEN: PushLocked requires mu_, which this caller never acquires.
  void Push(int v) { PushLocked(v); }

 private:
  void PushLocked(int v) LSMCOL_REQUIRES(mu_) { total_ += v; }

  lsmcol::Mutex mu_;
  int total_ LSMCOL_GUARDED_BY(mu_) = 0;
};

void Drive() {
  Queue q;
  q.Push(1);
}

}  // namespace lsmcol_negative
