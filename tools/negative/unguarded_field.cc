// Deliberately broken: writes a GUARDED_BY field without its mutex.
// tools/check_thread_safety_negative.sh expects clang's thread-safety
// analysis to REJECT this TU; if it compiles clean under the analysis
// flags, the annotation machinery has silently stopped working.

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace lsmcol_negative {

class Counter {
 public:
  Counter() : mu_(lsmcol::MutexRank::kLeaf) {}

  // BROKEN: value_ is guarded by mu_, which is not held here.
  void Increment() { ++value_; }

 private:
  lsmcol::Mutex mu_;
  int value_ LSMCOL_GUARDED_BY(mu_) = 0;
};

void Drive() {
  Counter c;
  c.Increment();
}

}  // namespace lsmcol_negative
