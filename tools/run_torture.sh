#!/usr/bin/env bash
# One-command reproduction of a torture-harness failure (tests/torture_test.cc).
#
#   tools/run_torture.sh <seed>            # run exactly that seed
#   tools/run_torture.sh <seed> <count>    # run <count> seeds starting there
#
# Builds the harness if needed (reusing ./build when configured, else an
# ASan/UBSan tree matching the CI torture job) and runs it with the seed
# pinned through the same environment variables CI uses, so a seed that
# failed in CI fails identically here.
set -euo pipefail

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
  echo "usage: $0 <seed> [count]" >&2
  exit 2
fi
SEED="$1"
COUNT="${2-1}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  BUILD="$ROOT/build-torture"
  cmake -B "$BUILD" -S "$ROOT" -DLSMCOL_SANITIZE=address,undefined \
    -DLSMCOL_BUILD_BENCHES=OFF -DLSMCOL_BUILD_EXAMPLES=OFF
fi
cmake --build "$BUILD" -j --target torture_test

export ASAN_OPTIONS="${ASAN_OPTIONS-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS-halt_on_error=1}"
if [ "$COUNT" = "1" ]; then
  LSMCOL_TORTURE_SEED="$SEED" exec "$BUILD/tests/torture_test"
else
  LSMCOL_TORTURE_SEED_BASE="$SEED" LSMCOL_TORTURE_SEEDS="$COUNT" \
    exec "$BUILD/tests/torture_test"
fi
